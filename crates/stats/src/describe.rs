//! Descriptive statistics, histograms, empirical CDFs and QQ data —
//! everything needed to print the paper's figures as text/CSV series.

use crate::distribution::Distribution;
use crate::error::StatsError;
use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
///
/// # Examples
///
/// ```
/// use resmodel_stats::describe::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0])?;
/// assert_eq!(s.mean, 3.0);
/// assert_eq!(s.median, 3.0);
/// assert_eq!(s.min, 1.0);
/// # Ok::<(), resmodel_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of data points.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased (n−1) sample variance.
    pub variance: f64,
    /// Square root of [`Summary::variance`].
    pub std_dev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Median (50th percentile, midpoint interpolation).
    pub median: f64,
}

impl Summary {
    /// Compute summary statistics of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyData`] for empty input and
    /// [`StatsError::NonFiniteData`] when NaN/inf is present.
    pub fn of(data: &[f64]) -> Result<Self, StatsError> {
        if data.is_empty() {
            return Err(StatsError::EmptyData {
                what: "Summary::of",
                needed: 1,
                got: 0,
            });
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::NonFiniteData {
                what: "Summary::of",
            });
        }
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let variance = if n > 1 {
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite data"));
        Ok(Self {
            n,
            mean,
            variance,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: quantile_sorted(&sorted, 0.5),
        })
    }
}

/// First two moments of a sample, computed without materialising it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanVariance {
    /// Number of data points.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased (n−1) sample variance.
    pub variance: f64,
}

/// Mean and unbiased variance over a re-iterable value stream — the
/// slice-free entry point for columnar column views.
///
/// Uses the exact two-pass accumulation of [`Summary::of`] (left-to-
/// right sum for the mean, then left-to-right sum of squared
/// deviations), so for the same value sequence the results are bitwise
/// identical to `Summary::of(&collected).mean/.variance` — without the
/// intermediate `Vec<f64>` or the sort the full summary needs.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] for an empty stream and
/// [`StatsError::NonFiniteData`] when NaN/inf is present.
pub fn mean_variance<I>(data: I) -> Result<MeanVariance, StatsError>
where
    I: ExactSizeIterator<Item = f64> + Clone,
{
    let n = data.len();
    if n == 0 {
        return Err(StatsError::EmptyData {
            what: "mean_variance",
            needed: 1,
            got: 0,
        });
    }
    if data.clone().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFiniteData {
            what: "mean_variance",
        });
    }
    let mean = data.clone().sum::<f64>() / n as f64;
    let variance = if n > 1 {
        data.map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
    } else {
        0.0
    };
    Ok(MeanVariance { n, mean, variance })
}

/// Quantile of already-sorted data with linear interpolation.
///
/// # Panics
///
/// Panics when `sorted` is empty or `p` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Quantile of unsorted data (sorts a copy).
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] for empty input.
pub fn quantile(data: &[f64], p: f64) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyData {
            what: "quantile",
            needed: 1,
            got: 0,
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Ok(quantile_sorted(&sorted, p))
}

/// A fixed-width histogram over `[min, max]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    total: u64,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Build a histogram of `data` with `bins` equal-width bins spanning
    /// `[min, max]`. Values outside the range are tallied separately
    /// (see [`Histogram::outside`]).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `bins == 0` or
    /// `min >= max`.
    pub fn with_range(data: &[f64], min: f64, max: f64, bins: usize) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                value: 0.0,
                constraint: "must be > 0",
            });
        }
        if !(min < max) {
            return Err(StatsError::InvalidParameter {
                name: "min",
                value: min,
                constraint: "must be < max",
            });
        }
        let mut h = Self {
            min,
            max,
            counts: vec![0; bins],
            total: 0,
            below: 0,
            above: 0,
        };
        for &x in data {
            h.add(x);
        }
        Ok(h)
    }

    /// Build a histogram spanning the data's own min/max.
    ///
    /// # Errors
    ///
    /// Fails on empty or constant data, or `bins == 0`.
    pub fn of(data: &[f64], bins: usize) -> Result<Self, StatsError> {
        if data.is_empty() {
            return Err(StatsError::EmptyData {
                what: "Histogram::of",
                needed: 1,
                got: 0,
            });
        }
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Widen the top edge slightly so the maximum lands in-range.
        let span = (max - min).max(f64::MIN_POSITIVE);
        Self::with_range(data, min, max + span * 1e-9, bins)
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.min {
            self.below += 1;
        } else if x >= self.max {
            self.above += 1;
        } else {
            let w = (self.max - self.min) / self.counts.len() as f64;
            let idx = ((x - self.min) / w) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
            self.total += 1;
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of in-range observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(below_range, above_range)` counts.
    pub fn outside(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// Midpoint of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.max - self.min) / self.counts.len() as f64;
        self.min + w * (i as f64 + 0.5)
    }

    /// Probability-density series `(bin_center, density)`; densities
    /// integrate to ~1 over the histogram range.
    pub fn pdf_series(&self) -> Vec<(f64, f64)> {
        let w = (self.max - self.min) / self.counts.len() as f64;
        let denom = (self.total.max(1)) as f64 * w;
        (0..self.counts.len())
            .map(|i| (self.bin_center(i), self.counts[i] as f64 / denom))
            .collect()
    }

    /// Fraction-of-total series `(bin_center, fraction)`, the paper's
    /// "% of total" histogram format (Figs 6 and 10).
    pub fn fraction_series(&self) -> Vec<(f64, f64)> {
        let denom = self.total.max(1) as f64;
        (0..self.counts.len())
            .map(|i| (self.bin_center(i), self.counts[i] as f64 / denom))
            .collect()
    }

    /// Cumulative-fraction series `(bin_right_edge, cum_fraction)`.
    pub fn cdf_series(&self) -> Vec<(f64, f64)> {
        let w = (self.max - self.min) / self.counts.len() as f64;
        let denom = self.total.max(1) as f64;
        let mut acc = 0u64;
        (0..self.counts.len())
            .map(|i| {
                acc += self.counts[i];
                (self.min + w * (i as f64 + 1.0), acc as f64 / denom)
            })
            .collect()
    }
}

/// Empirical CDF: returns the sorted sample and, for each point, the
/// fraction of data ≤ that point.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] for empty input.
pub fn ecdf(data: &[f64]) -> Result<Vec<(f64, f64)>, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyData {
            what: "ecdf",
            needed: 1,
            got: 0,
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    Ok(sorted
        .into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect())
}

/// QQ-plot data: pairs `(theoretical_quantile, sample_quantile)` at the
/// plotting positions `(i + 0.5)/n`. Used for the paper's (unshown but
/// described) QQ validation of generated hosts.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] for empty input.
pub fn qq_points(data: &[f64], dist: &dyn Distribution) -> Result<Vec<(f64, f64)>, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyData {
            what: "qq_points",
            needed: 1,
            got: 0,
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    Ok(sorted
        .into_iter()
        .enumerate()
        .map(|(i, x)| (dist.quantile((i as f64 + 0.5) / n as f64), x))
        .collect())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::distributions::Normal;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn summary_single_point() {
        let s = Summary::of(&[3.0]).unwrap();
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert!(Summary::of(&[]).is_err());
        assert!(Summary::of(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn mean_variance_matches_summary_bitwise() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&data).unwrap();
        let mv = mean_variance(data.iter().copied()).unwrap();
        assert_eq!(mv.n, s.n);
        assert_eq!(mv.mean.to_bits(), s.mean.to_bits());
        assert_eq!(mv.variance.to_bits(), s.variance.to_bits());
    }

    #[test]
    fn mean_variance_single_point_and_errors() {
        let mv = mean_variance([3.0].iter().copied()).unwrap();
        assert_eq!(mv.variance, 0.0);
        assert_eq!(mv.n, 1);
        let empty: Vec<f64> = Vec::new();
        assert!(mean_variance(empty.iter().copied()).is_err());
        assert!(mean_variance([1.0, f64::NAN].iter().copied()).is_err());
    }

    #[test]
    fn quantiles() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 4.0);
        assert!((quantile(&data, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn histogram_counts() {
        let h = Histogram::with_range(&[0.5, 1.5, 1.6, 2.5, 3.5], 0.0, 4.0, 4).unwrap();
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.outside(), (0, 0));
    }

    #[test]
    fn histogram_out_of_range() {
        let h = Histogram::with_range(&[-1.0, 0.5, 10.0], 0.0, 1.0, 2).unwrap();
        assert_eq!(h.outside(), (1, 1));
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn histogram_max_value_included_by_of() {
        let h = Histogram::of(&[1.0, 2.0, 3.0], 3).unwrap();
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn histogram_pdf_integrates_to_one() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 / 100.0).collect();
        let h = Histogram::of(&data, 20).unwrap();
        let w = (10.0 - 0.0) / 20.0;
        let integral: f64 = h.pdf_series().iter().map(|(_, d)| d * w).sum();
        assert!((integral - 1.0).abs() < 0.01);
    }

    #[test]
    fn histogram_fraction_sums_to_one() {
        let data: Vec<f64> = (0..500).map(|i| (i % 17) as f64).collect();
        let h = Histogram::of(&data, 17).unwrap();
        let sum: f64 = h.fraction_series().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_cdf_ends_at_one() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let h = Histogram::of(&data, 5).unwrap();
        let cdf = h.cdf_series();
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        // CDF must be nondecreasing.
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn histogram_rejects_bad_params() {
        assert!(Histogram::with_range(&[1.0], 0.0, 1.0, 0).is_err());
        assert!(Histogram::with_range(&[1.0], 1.0, 1.0, 3).is_err());
        assert!(Histogram::of(&[], 3).is_err());
    }

    #[test]
    fn ecdf_monotone() {
        let e = ecdf(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(e[0].0, 1.0);
        assert!((e[2].1 - 1.0).abs() < 1e-12);
        for w in e.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn qq_points_straight_line_for_matching_dist() {
        let n = Normal::new(0.0, 1.0).unwrap();
        let data: Vec<f64> = (0..99)
            .map(|i| n.quantile((i as f64 + 0.5) / 99.0))
            .collect();
        let qq = qq_points(&data, &n).unwrap();
        for (theo, samp) in qq {
            assert!((theo - samp).abs() < 1e-9);
        }
    }

    #[test]
    fn qq_points_rejects_empty() {
        let n = Normal::new(0.0, 1.0).unwrap();
        assert!(qq_points(&[], &n).is_err());
    }
}
