//! The `resmodel.svc/1` wire protocol: length-prefixed JSON frames.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. Requests and responses are single frames; a
//! connection carries any number of request/response pairs in order.
//! Frames above [`MAX_FRAME_LEN`] are rejected without reading the
//! payload — and because the stream can no longer be resynchronized
//! after an oversized announcement, the server answers with an error
//! frame and closes the connection. A *malformed* payload (bytes that
//! are not a valid request) is harmless by contrast: the frame
//! boundary is still intact, so the server answers with an error frame
//! and keeps the connection open.

use resmodel_error::ResmodelError;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol identifier carried in every request and response.
pub const PROTOCOL: &str = "resmodel.svc/1";

/// Hard ceiling on a frame's payload length. Generous (a 12k-host
/// pipeline report is under 20 KiB) while still rejecting a garbage
/// length prefix before it turns into a giant allocation.
pub const MAX_FRAME_LEN: u32 = 32 * 1024 * 1024;

/// The service's endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Run (or replay) a full [`resmodel::pipeline::PipelineSpec`].
    RunPipeline,
    /// Run (or replay) a [`resmodel::sweep::SweepSpec`] grid.
    RunSweep,
    /// Run a pipeline spec's dispatch stage; the body is the
    /// `DispatchReport` subtree alone.
    Dispatch,
    /// Run a pipeline spec's fit and predict the requested dates; the
    /// body is the prediction subtree alone.
    Predict,
    /// Server and cache statistics (never cached; carries wall-clock).
    Stats,
    /// Acknowledge, then stop accepting connections.
    Shutdown,
}

impl Endpoint {
    /// Every endpoint, in protocol order.
    pub const ALL: [Endpoint; 6] = [
        Endpoint::RunPipeline,
        Endpoint::RunSweep,
        Endpoint::Dispatch,
        Endpoint::Predict,
        Endpoint::Stats,
        Endpoint::Shutdown,
    ];

    /// The wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Endpoint::RunPipeline => "run_pipeline",
            Endpoint::RunSweep => "run_sweep",
            Endpoint::Dispatch => "dispatch",
            Endpoint::Predict => "predict",
            Endpoint::Stats => "stats",
            Endpoint::Shutdown => "shutdown",
        }
    }

    /// Parse a wire name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Endpoint::ALL.into_iter().find(|e| e.as_str() == name)
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One request frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Must equal [`PROTOCOL`].
    pub proto: String,
    /// Wire name of the endpoint (see [`Endpoint::parse`]).
    pub endpoint: String,
    /// The spec document (pipeline/sweep), verbatim JSON; required by
    /// every endpoint except `stats` and `shutdown`.
    pub spec: Option<Value>,
    /// Fractional-year prediction dates; `predict` only.
    pub dates: Option<Vec<f64>>,
    /// Client-chosen request id, echoed in the response and used to
    /// tag the server's trace events. The server assigns `r<seq>`
    /// when absent, so every frame is traceable either way.
    pub request_id: Option<String>,
}

impl Request {
    /// A request with no spec attached (`stats`, `shutdown`).
    #[must_use]
    pub fn bare(endpoint: Endpoint) -> Self {
        Request {
            proto: PROTOCOL.to_owned(),
            endpoint: endpoint.as_str().to_owned(),
            spec: None,
            dates: None,
            request_id: None,
        }
    }

    /// A request carrying a spec document.
    #[must_use]
    pub fn with_spec(endpoint: Endpoint, spec: Value) -> Self {
        Request {
            spec: Some(spec),
            ..Request::bare(endpoint)
        }
    }
}

/// One response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Always [`PROTOCOL`].
    pub proto: String,
    /// Echo of the request's endpoint (`"?"` when it never parsed).
    pub endpoint: String,
    /// Whether the request succeeded; `false` means `error` is set and
    /// `body` is absent.
    pub ok: bool,
    /// Whether the body was served from the content-addressed cache;
    /// absent on endpoints that never cache (`stats`, `shutdown`) and
    /// on errors.
    pub cached: Option<bool>,
    /// Content address (SHA-256 of the canonical spec JSON); absent
    /// when the request failed before hashing.
    pub spec_hash: Option<String>,
    /// The result document; absent on errors.
    pub body: Option<Value>,
    /// Human-readable failure; absent on success.
    pub error: Option<String>,
    /// The id under which the server traced this request: the
    /// client's `request_id` when it sent one, a server-assigned
    /// `r<seq>` otherwise. Quote it when reporting a failure — the
    /// flight-recorder dump is keyed by it.
    pub request_id: Option<String>,
    /// Machine-readable failure class for errors that clients handle
    /// specially: `busy` (connection limit) or `panic` (handler
    /// crashed). Absent on success and on ordinary request errors.
    pub code: Option<String>,
}

impl Response {
    /// A success response.
    #[must_use]
    pub fn success(
        endpoint: &str,
        cached: Option<bool>,
        spec_hash: Option<String>,
        body: Value,
    ) -> Self {
        Response {
            proto: PROTOCOL.to_owned(),
            endpoint: endpoint.to_owned(),
            ok: true,
            cached,
            spec_hash,
            body: Some(body),
            error: None,
            request_id: None,
            code: None,
        }
    }

    /// An error response.
    #[must_use]
    pub fn failure(endpoint: &str, spec_hash: Option<String>, error: impl Into<String>) -> Self {
        Response {
            proto: PROTOCOL.to_owned(),
            endpoint: endpoint.to_owned(),
            ok: false,
            cached: None,
            spec_hash,
            body: None,
            error: Some(error.into()),
            request_id: None,
            code: None,
        }
    }

    /// The typed rejection an over-limit connection receives before
    /// the server hangs up (`code: "busy"`). Retryable by definition:
    /// the request was never read, let alone executed.
    #[must_use]
    pub fn busy(max_conns: usize) -> Self {
        let mut response = Response::failure(
            "?",
            None,
            format!("server is at its {max_conns}-connection limit; retry later"),
        );
        response.code = Some("busy".to_owned());
        response
    }
}

/// Why a frame read failed.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream mid-frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`]; the payload was
    /// not read and the stream cannot be resynchronized.
    Oversized {
        /// The announced payload length.
        len: u32,
        /// The ceiling it exceeded.
        max: u32,
    },
    /// An underlying transport error.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => f.write_str("stream closed mid-frame"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte limit")
            }
            FrameError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for ResmodelError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ResmodelError::io("svc frame", io),
            other => ResmodelError::config("svc frame", other.to_string()),
        }
    }
}

/// Write one frame: length prefix, then the payload.
///
/// # Errors
///
/// Returns the transport's error; [`FrameError::Oversized`] when the
/// payload itself exceeds the protocol limit.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    let len = u32::try_from(payload.len()).map_err(|_| FrameError::Oversized {
        len: u32::MAX,
        max: MAX_FRAME_LEN,
    })?;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    w.write_all(&len.to_be_bytes()).map_err(FrameError::Io)?;
    w.write_all(payload).map_err(FrameError::Io)?;
    w.flush().map_err(FrameError::Io)
}

/// Read one frame. `Ok(None)` on a clean end-of-stream (the peer
/// closed between frames); [`FrameError::Truncated`] when it closed
/// inside one.
///
/// # Errors
///
/// [`FrameError`] on truncation, an oversized length prefix, or a
/// transport error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    match read_exact_or_eof(r, &mut prefix)? {
        ReadOutcome::CleanEof => return Ok(None),
        ReadOutcome::Filled => {}
    }
    read_frame_after_prefix(r, prefix).map(Some)
}

/// Read the rest of a frame whose 4-byte prefix is already in hand —
/// the server's poll loop reads the first bytes itself so it can watch
/// the shutdown flag while idle.
///
/// # Errors
///
/// [`FrameError`] on truncation, an oversized length prefix, or a
/// transport error. An oversized prefix leaves the payload unread.
pub fn read_frame_after_prefix(r: &mut impl Read, prefix: [u8; 4]) -> Result<Vec<u8>, FrameError> {
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    })?;
    Ok(payload)
}

enum ReadOutcome {
    CleanEof,
    Filled,
}

/// `read_exact` that distinguishes EOF-before-any-bytes (a clean
/// close) from EOF-mid-buffer (truncation).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::CleanEof),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(ReadOutcome::Filled)
}

/// Serialize and send one message.
///
/// # Errors
///
/// [`FrameError`] as for [`write_frame`].
pub fn send<T: Serialize>(w: &mut impl Write, message: &T) -> Result<(), FrameError> {
    let text = serde_json::to_string(message)
        .map_err(|e| FrameError::Io(io::Error::new(io::ErrorKind::InvalidData, e.to_string())))?;
    write_frame(w, text.as_bytes())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn endpoints_round_trip_their_wire_names() {
        for e in Endpoint::ALL {
            assert_eq!(Endpoint::parse(e.as_str()), Some(e));
        }
        assert_eq!(Endpoint::parse("no_such"), None);
    }

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frames_are_detected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        // Cut inside the payload.
        let mut r = &wire[..6];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
        // Cut inside the length prefix.
        let mut r = &wire[..2];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
    }

    #[test]
    fn oversized_prefixes_are_rejected_without_reading() {
        let mut wire = Vec::from(u32::MAX.to_be_bytes());
        wire.extend_from_slice(b"junk");
        let mut r = wire.as_slice();
        match read_frame(&mut r) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("expected oversized, got {other:?}"),
        }
        // The payload bytes were not consumed.
        assert_eq!(r, b"junk");
    }

    #[test]
    fn oversized_writes_are_rejected() {
        // Claiming the length is enough — don't allocate 32 MiB in a
        // unit test; write_frame checks the payload length first.
        let payload = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, &payload),
            Err(FrameError::Oversized { .. })
        ));
        assert!(sink.is_empty());
    }

    #[test]
    fn messages_round_trip_as_frames() {
        let req = Request::with_spec(Endpoint::RunPipeline, serde_json::json!({"k": 1u32}));
        let mut wire = Vec::new();
        send(&mut wire, &req).unwrap();
        let payload = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        let back: Request = serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.proto, PROTOCOL);

        let resp = Response::failure("predict", None, "fit stage is required");
        let mut wire = Vec::new();
        send(&mut wire, &resp).unwrap();
        let payload = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        let back: Response = serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
        assert_eq!(back, resp);
        assert!(!back.ok);
    }

    #[test]
    fn request_ids_and_codes_round_trip_and_stay_optional() {
        // Pre-tracing peers omit the new fields entirely; they must
        // parse to None so old clients and fixtures keep working.
        let legacy = r#"{"proto":"resmodel.svc/1","endpoint":"stats","spec":null,"dates":null}"#;
        let req: Request = serde_json::from_str(legacy).unwrap();
        assert_eq!(req.request_id, None);

        let mut tagged = Request::bare(Endpoint::Stats);
        tagged.request_id = Some("c7".to_owned());
        let back: Request = serde_json::from_str(&serde_json::to_string(&tagged).unwrap()).unwrap();
        assert_eq!(back.request_id.as_deref(), Some("c7"));

        let busy = Response::busy(64);
        assert!(!busy.ok);
        assert_eq!(busy.endpoint, "?");
        assert_eq!(busy.code.as_deref(), Some("busy"));
        let back: Response = serde_json::from_str(&serde_json::to_string(&busy).unwrap()).unwrap();
        assert_eq!(back, busy);
    }
}
