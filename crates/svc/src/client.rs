//! The typed client: one connection per request, blocking I/O.
//!
//! Model work can take seconds on a cold cache, so the client simply
//! blocks on the response frame; connections are not pooled (the
//! protocol allows pipelining on one connection, the client just
//! doesn't need it).

use crate::proto::{self, Endpoint, Request, Response, PROTOCOL};
use resmodel::pipeline::PipelineSpec;
use resmodel::sweep::SweepSpec;
use resmodel::ResmodelError;
use serde::Value;
use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where the server lives.
#[derive(Debug, Clone)]
enum Target {
    Tcp(String),
    #[cfg(unix)]
    Uds(PathBuf),
}

/// A successful response, typed.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Whether the body came from the server's content-addressed
    /// cache.
    pub cached: bool,
    /// The spec's content address, when the endpoint has one.
    pub spec_hash: Option<String>,
    /// The result document.
    pub body: Value,
    /// The id the server traced this request under (the one this
    /// client sent, echoed back).
    pub request_id: Option<String>,
}

impl Reply {
    /// The body as pretty JSON — byte-identical to the corresponding
    /// report type's `zero_timings()` + `to_json_pretty()` on a local
    /// run (the cache stores wall-clock-zeroed trees).
    #[must_use]
    pub fn body_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.body).unwrap_or_else(|_| "null".to_owned())
    }
}

/// A `resmodel.svc/1` client.
///
/// Every request is sent under a request id — `<prefix>-<n>` with a
/// shared monotone counter (clones continue the same sequence), unless
/// the caller set one on the [`Request`] already. The server echoes
/// the id and keys its trace events and flight-recorder dumps by it.
#[derive(Debug, Clone)]
pub struct Client {
    target: Target,
    id_prefix: String,
    next_id: Arc<AtomicU64>,
}

impl Client {
    /// A client for a TCP server, e.g. `127.0.0.1:7171`.
    #[must_use]
    pub fn tcp(addr: impl Into<String>) -> Self {
        Client {
            target: Target::Tcp(addr.into()),
            id_prefix: "c".to_owned(),
            next_id: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A client for a Unix-domain-socket server.
    #[cfg(unix)]
    #[must_use]
    pub fn uds(path: impl Into<PathBuf>) -> Self {
        Client {
            target: Target::Uds(path.into()),
            id_prefix: "c".to_owned(),
            next_id: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Change the request-id prefix (default `c`, yielding `c-1`,
    /// `c-2`, …). A load generator names its workers this way so a
    /// server-side dump attributes a failure to the exact sender.
    #[must_use]
    pub fn with_request_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.id_prefix = prefix.into();
        self
    }

    /// Run (or replay) a full pipeline; the body is the zeroed
    /// `PipelineReport` tree.
    ///
    /// # Errors
    ///
    /// [`ResmodelError::Svc`] on transport failures or an error
    /// response.
    pub fn run_pipeline(&self, spec: &PipelineSpec) -> Result<Reply, ResmodelError> {
        self.request(&Request::with_spec(
            Endpoint::RunPipeline,
            serde_json::to_value(spec),
        ))
    }

    /// Run (or replay) a sweep grid; the body is the zeroed
    /// `SweepReport` tree.
    ///
    /// # Errors
    ///
    /// As for [`Client::run_pipeline`].
    pub fn run_sweep(&self, spec: &SweepSpec) -> Result<Reply, ResmodelError> {
        self.request(&Request::with_spec(
            Endpoint::RunSweep,
            serde_json::to_value(spec),
        ))
    }

    /// Run a pipeline spec's dispatch stage; the body is the
    /// `DispatchReport` subtree.
    ///
    /// # Errors
    ///
    /// As for [`Client::run_pipeline`].
    pub fn dispatch(&self, spec: &PipelineSpec) -> Result<Reply, ResmodelError> {
        self.request(&Request::with_spec(
            Endpoint::Dispatch,
            serde_json::to_value(spec),
        ))
    }

    /// Fit the spec and predict the given fractional-year dates; the
    /// body is the prediction subtree.
    ///
    /// # Errors
    ///
    /// As for [`Client::run_pipeline`].
    pub fn predict(&self, spec: &PipelineSpec, dates: &[f64]) -> Result<Reply, ResmodelError> {
        let mut request = Request::with_spec(Endpoint::Predict, serde_json::to_value(spec));
        request.dates = Some(dates.to_vec());
        self.request(&request)
    }

    /// Server and cache statistics.
    ///
    /// # Errors
    ///
    /// As for [`Client::run_pipeline`].
    pub fn stats(&self) -> Result<Reply, ResmodelError> {
        self.request(&Request::bare(Endpoint::Stats))
    }

    /// Ask the server to stop accepting connections.
    ///
    /// # Errors
    ///
    /// As for [`Client::run_pipeline`].
    pub fn shutdown(&self) -> Result<Reply, ResmodelError> {
        self.request(&Request::bare(Endpoint::Shutdown))
    }

    /// Send one raw request and wait for its response.
    ///
    /// # Errors
    ///
    /// [`ResmodelError::Svc`] on connect/frame failures, a closed
    /// stream, or an `ok: false` response (carrying the server's error
    /// text and, when present, the spec's content address).
    pub fn request(&self, request: &Request) -> Result<Reply, ResmodelError> {
        let mut request = request.clone();
        if request.request_id.is_none() {
            let n = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
            request.request_id = Some(format!("{}-{n}", self.id_prefix));
        }
        let endpoint = request.endpoint.clone();
        let wrap_io = |e: std::io::Error, what: &str| {
            ResmodelError::svc(endpoint.clone(), None, ResmodelError::io(what, e))
        };
        match &self.target {
            Target::Tcp(addr) => {
                let stream = TcpStream::connect(addr).map_err(|e| wrap_io(e, addr))?;
                self.round_trip(stream, &request)
            }
            #[cfg(unix)]
            Target::Uds(path) => {
                let stream = UnixStream::connect(path)
                    .map_err(|e| wrap_io(e, &path.display().to_string()))?;
                self.round_trip(stream, &request)
            }
        }
    }

    fn round_trip(
        &self,
        mut stream: impl Read + Write,
        request: &Request,
    ) -> Result<Reply, ResmodelError> {
        let endpoint = request.endpoint.as_str();
        proto::send(&mut stream, request)
            .map_err(|e| ResmodelError::svc(endpoint, None, e.into()))?;
        let payload = proto::read_frame(&mut stream)
            .map_err(|e| ResmodelError::svc(endpoint, None, e.into()))?
            .ok_or_else(|| {
                ResmodelError::svc(
                    endpoint,
                    None,
                    ResmodelError::config("svc response", "server closed without responding"),
                )
            })?;
        let text = std::str::from_utf8(&payload).map_err(|e| {
            ResmodelError::svc(
                endpoint,
                None,
                ResmodelError::json("svc response", format!("not UTF-8: {e}")),
            )
        })?;
        let response: Response = serde_json::from_str(text).map_err(|e| {
            ResmodelError::svc(endpoint, None, ResmodelError::json("svc response", e))
        })?;
        if response.proto != PROTOCOL {
            return Err(ResmodelError::svc(
                endpoint,
                None,
                ResmodelError::config(
                    "svc response",
                    format!("unsupported protocol `{}`", response.proto),
                ),
            ));
        }
        if !response.ok {
            let message = response
                .error
                .unwrap_or_else(|| "unspecified server error".to_owned());
            return Err(ResmodelError::svc(
                endpoint,
                response.spec_hash,
                ResmodelError::config("svc response", message),
            ));
        }
        Ok(Reply {
            cached: response.cached.unwrap_or(false),
            spec_hash: response.spec_hash,
            body: response.body.unwrap_or(Value::Null),
            request_id: response.request_id,
        })
    }
}
