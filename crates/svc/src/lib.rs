//! # resmodel-svc
//!
//! `resmodeld`: a concurrent query service over content-addressed
//! cached models — the serving layer on top of the `resmodel` batch
//! pipeline.
//!
//! The paper fits models once from yearly snapshots precisely so that
//! downstream consumers can query them cheaply and repeatedly; this
//! crate turns that economics into a daemon. Expensive artifacts
//! (fitted pipelines, sweep grids, dispatch and prediction reports)
//! are computed once, addressed by the SHA-256 of their *canonical*
//! spec JSON, and replayed byte-exactly forever after — the PR-6
//! determinism contract (reports byte-identical at any thread count
//! once wall-clock fields are zeroed) is what makes a cache hit
//! indistinguishable from a cold run.
//!
//! Pieces, bottom-up:
//!
//! * [`hash`] — pure-`std` SHA-256 for content addressing.
//! * [`cache`] — [`ModelCache`]: per-key once-cells (N concurrent
//!   identical requests → exactly one fit), LRU capacity bounds,
//!   wall-clock-zeroed bodies. With
//!   [`ModelCache::with_trace_dir`] the cache is additionally backed
//!   by the `resmodel.trace/1` persistence layer: each source's
//!   sanitized trace spills to disk once, and later `predict` /
//!   `dispatch` misses that share the source map the file back
//!   instead of regenerating the fleet (the `resmodeld --cache-dir`
//!   flag).
//! * [`proto`] — the `resmodel.svc/1` wire protocol: 4-byte
//!   big-endian length prefix + JSON payload, endpoints
//!   `run_pipeline` / `run_sweep` / `dispatch` / `predict` / `stats`
//!   / `shutdown`.
//! * [`server`] — thread-per-connection acceptor over TCP or
//!   Unix-domain sockets; model work installs the shared rayon pool
//!   per request.
//! * [`client`] — the typed [`Client`] used by `resmodeld --query`,
//!   the integration tests, and `examples/serve.rs`. Every request
//!   carries a request id the server traces under.
//! * [`loadgen`] — [`run_load`]: the load generator behind the
//!   `loadgen` binary; deterministic fixed schedules (the request
//!   multiset is connection-count-invariant) or duration/rps pacing.
//!
//! Everything is `std` + the vendored workspace dependencies — no
//! tokio, no async: the request mix (few, heavy, cacheable) is served
//! well by blocking threads, and the scope-based vendored `rayon`
//! keeps fit/dispatch parallelism inside a request.
//!
//! ```
//! use resmodel_svc::{serve_tcp, Client, ServerConfig};
//! use resmodel::pipeline::{PipelineSpec, SourceSpec};
//! use resmodel::prelude::Scenario;
//! use resmodel_obs::Collector;
//!
//! let obs = Collector::new();
//! let server = serve_tcp("127.0.0.1:0", ServerConfig::default(), &obs)?;
//! let addr = server.tcp_addr().expect("tcp server has a tcp addr");
//!
//! let spec = PipelineSpec {
//!     source: SourceSpec::Scenario {
//!         scenario: Scenario::steady_state(7),
//!         max_hosts: 300,
//!     },
//!     sanitize: None,
//!     fit: None,
//!     validate: None,
//!     predict: None,
//!     dispatch: None,
//! };
//! let client = Client::tcp(addr.to_string());
//! let cold = client.run_pipeline(&spec)?;
//! let warm = client.run_pipeline(&spec)?;
//! assert!(!cold.cached && warm.cached);
//! assert_eq!(cold.body_pretty(), warm.body_pretty());
//!
//! client.shutdown()?;
//! server.join();
//! # Ok::<(), resmodel::ResmodelError>(())
//! ```

#![warn(clippy::unwrap_used)]

pub mod cache;
pub mod client;
pub mod hash;
pub mod loadgen;
pub mod proto;
pub mod server;

pub use cache::{CacheOutcome, CacheStats, ModelCache, TraceStoreStats};
pub use client::{Client, Reply};
pub use hash::{sha256, sha256_hex};
pub use loadgen::{default_spec_pool, parse_mix, run_load, EndpointLoad, LoadReport, LoadSpec};
pub use proto::{Endpoint, Request, Response, MAX_FRAME_LEN, PROTOCOL};
#[cfg(unix)]
pub use server::serve_uds;
pub use server::{serve_tcp, ServerAddr, ServerConfig, ServerHandle};
