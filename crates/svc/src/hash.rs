//! Minimal SHA-256 (FIPS 180-4) for content addressing.
//!
//! The cache key of a request is the hash of its *canonical* spec
//! JSON, so the address depends only on the spec's value, never on the
//! formatting of the incoming text. A full cryptographic hash is
//! deliberate: content addresses appear in error messages, logs, and
//! the wire protocol, and must never collide across distinct specs.
//! Implemented here over `std` alone — the workspace vendors every
//! dependency and gains nothing from a fifth-party digest crate.

/// Round constants: the first 32 bits of the fractional parts of the
/// cube roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// Initial hash state: the first 32 bits of the fractional parts of
/// the square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// Compress one 64-byte block into the running state.
fn compress(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *s = s.wrapping_add(v);
    }
}

/// SHA-256 digest of `data`.
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut state = H0;
    let mut blocks = data.chunks_exact(64);
    for block in blocks.by_ref() {
        compress(&mut state, block);
    }
    // Padding: 0x80, zeros, then the bit length as a big-endian u64.
    let rem = blocks.remainder();
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_len = if rem.len() < 56 { 64 } else { 128 };
    let bit_len = (data.len() as u64) * 8;
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
    for block in tail[..tail_len].chunks_exact(64) {
        compress(&mut state, block);
    }
    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(state) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// SHA-256 digest of `data` as lowercase hex — the content-address
/// form used in cache keys, responses, and error messages.
#[must_use]
pub fn sha256_hex(data: &[u8]) -> String {
    let mut s = String::with_capacity(64);
    for byte in sha256(data) {
        s.push(char::from_digit(u32::from(byte >> 4), 16).unwrap_or('0'));
        s.push(char::from_digit(u32::from(byte & 0xf), 16).unwrap_or('0'));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST test vectors.
    #[test]
    fn empty_input() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            sha256_hex(b"The quick brown fox jumps over the lazy dog"),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
        );
    }

    #[test]
    fn padding_boundaries() {
        // Lengths straddling the 55/56-byte padding split and the
        // 64-byte block size must all hash without panicking and all
        // differ.
        let mut seen = std::collections::HashSet::new();
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0x5au8; len];
            assert!(seen.insert(sha256_hex(&data)), "collision at len {len}");
        }
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256_hex(&data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }
}
