//! The load generator: measure `resmodeld` under fire.
//!
//! [`run_load`] hammers a live daemon with a configurable endpoint mix
//! over N concurrent worker connections and reports client-observed
//! latencies, error counts and throughput — the numbers behind the
//! `/8` `svc_load` bench block ([`SvcLoadSummary`]).
//!
//! Two pacing modes:
//!
//! * **Fixed** ([`LoadSpec::total_requests`]): the whole request
//!   schedule — endpoint and spec choice for every request index — is
//!   pre-generated from deterministic seed substreams
//!   (`substream(seed, i)`), and workers *claim* indices from a shared
//!   atomic counter. The request multiset the server sees is therefore
//!   a pure function of `(seed, mix, specs, total_requests)` —
//!   independent of connection count, thread count and scheduling — so
//!   the server's `deterministic_fingerprint()` is load-invariant.
//!   Request ids are `q-<index+1>`.
//! * **Duration** ([`LoadSpec::duration`], optionally paced by
//!   [`LoadSpec::rps`]): each worker draws from its own seed substream
//!   until the deadline. Throughput-shaped, not multiset-deterministic
//!   — the CI smoke mode.
//!
//! Client-side latency histograms are named
//! `loadgen.<endpoint>.request_ms` — the `_ms` suffix quarantines them
//! from fingerprints just like the server-side span totals.

use crate::client::Client;
use crate::proto::{Endpoint, Request};
use resmodel::pipeline::PipelineSpec;
use resmodel::stats::rng::substream;
use resmodel::sweep::{SvcLoadEndpoint, SvcLoadSummary};
use resmodel::ResmodelError;
use resmodel_obs::{Histogram, MetricsReport, SloSpec};
use serde_json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// What to throw at the daemon.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Concurrent worker connections (≥ 1).
    pub connections: usize,
    /// Fixed mode: stop after exactly this many requests total.
    /// Mutually exclusive with `duration`.
    pub total_requests: Option<u64>,
    /// Duration mode: stop at this deadline. Mutually exclusive with
    /// `total_requests`.
    pub duration: Option<Duration>,
    /// Open-loop pacing for duration mode: aggregate target requests
    /// per second, spread evenly over the workers. `None` = closed
    /// loop (each worker sends as fast as responses come back).
    pub rps: Option<f64>,
    /// Weighted endpoint mix (see [`parse_mix`]). `shutdown` is not a
    /// load endpoint and is rejected.
    pub mix: Vec<(Endpoint, u32)>,
    /// Master seed for the schedule / per-worker substreams.
    pub seed: u64,
    /// Spec pool for spec-carrying endpoints (`run_pipeline`,
    /// `dispatch`, `predict`); the schedule picks one per request.
    /// Specs sent to `predict` must carry a fit stage or the server
    /// answers with an error frame (which counts as an error here).
    pub specs: Vec<PipelineSpec>,
    /// Fractional-year dates for `predict` requests.
    pub predict_dates: Vec<f64>,
}

impl LoadSpec {
    /// A fixed-schedule spec: `total` requests over `connections`
    /// workers, default mix `run_pipeline:predict:stats`.
    #[must_use]
    pub fn fixed(connections: usize, total: u64, specs: Vec<PipelineSpec>) -> Self {
        LoadSpec {
            connections,
            total_requests: Some(total),
            duration: None,
            rps: None,
            mix: vec![
                (Endpoint::RunPipeline, 1),
                (Endpoint::Predict, 1),
                (Endpoint::Stats, 1),
            ],
            seed: 42,
            specs,
            predict_dates: vec![2011.0, 2012.5],
        }
    }
}

/// One endpoint's aggregated client-side figures.
#[derive(Debug, Clone)]
pub struct EndpointLoad {
    /// The endpoint.
    pub endpoint: Endpoint,
    /// Requests completed (ok or error).
    pub requests: u64,
    /// Requests that came back as error frames or failed in
    /// transport.
    pub errors: u64,
    /// Client-observed request latency (connect + round-trip), ms.
    pub latency: Histogram,
}

/// What [`run_load`] measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// `"fixed"`, `"duration"` or `"rps"`.
    pub mode: String,
    /// Worker connections used.
    pub connections: usize,
    /// Total requests completed.
    pub requests: u64,
    /// Total errors.
    pub errors: u64,
    /// Wall time of the run, ms.
    pub wall_ms: f64,
    /// `requests / wall seconds`.
    pub served_per_sec: f64,
    /// Per-endpoint breakdown, in mix order (deduplicated).
    pub endpoints: Vec<EndpointLoad>,
}

impl LoadReport {
    /// Condense into the `/8` bench block, folding in the server's
    /// own view (cache hits/misses and the SLO verdict over its
    /// latency histograms) when a final `stats` snapshot is at hand.
    #[must_use]
    pub fn svc_load_summary(&self, server_metrics: Option<&MetricsReport>) -> SvcLoadSummary {
        let hits = server_metrics
            .and_then(|m| m.counter("svc.cache.hits"))
            .unwrap_or(0);
        let misses = server_metrics
            .and_then(|m| m.counter("svc.cache.misses"))
            .unwrap_or(0);
        let lookups = hits + misses;
        #[allow(clippy::cast_precision_loss)]
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        let endpoints = self
            .endpoints
            .iter()
            .map(|e| {
                let name = format!("loadgen.{}.request_ms", e.endpoint.as_str());
                let q = |q: f64| e.latency.quantile(q).unwrap_or(0.0);
                SvcLoadEndpoint {
                    endpoint: e.endpoint.as_str().to_owned(),
                    requests: e.requests,
                    errors: e.errors,
                    p50_ms: q(0.5),
                    p90_ms: q(0.9),
                    p99_ms: q(0.99),
                    p999_ms: q(0.999),
                    latency: e.latency.summary(&name),
                }
            })
            .collect();
        SvcLoadSummary {
            mode: self.mode.clone(),
            connections: self.connections,
            requests: self.requests,
            errors: self.errors,
            wall_ms: self.wall_ms,
            served_per_sec: self.served_per_sec,
            hits,
            misses,
            hit_rate,
            slo: server_metrics.map(|m| SloSpec::svc_default().evaluate(m)),
            endpoints,
        }
    }
}

/// The default spec pool: three small fit-bearing steady-state
/// fleets. Distinct specs exercise distinct cache keys (so a load run
/// sees both misses and hits), every spec carries a fit stage (so
/// `predict` succeeds), and ~2k hosts keeps a cold miss cheap enough
/// for CI smoke runs while giving the yearly ratio-law fit enough
/// populated snapshots (the steady-state scenario ramps up from 2006,
/// so tiny fleets leave early fit dates empty).
#[must_use]
pub fn default_spec_pool() -> Vec<PipelineSpec> {
    use resmodel::pipeline::SourceSpec;
    use resmodel::prelude::{FitConfig, Scenario};
    (0..3u64)
        .map(|i| PipelineSpec {
            source: SourceSpec::Scenario {
                scenario: Scenario::steady_state(11 + i),
                max_hosts: 2_000,
            },
            sanitize: None,
            fit: Some(FitConfig::yearly(2007, 2010)),
            validate: None,
            predict: None,
            dispatch: None,
        })
        .collect()
}

/// Parse a mix string: colon-separated endpoint names, each optionally
/// weighted with `=N` — `"run_pipeline:predict:stats"`,
/// `"run_pipeline=3:stats=1"`.
///
/// # Errors
///
/// [`ResmodelError::Config`] on unknown endpoints, zero weights,
/// `shutdown`, or an empty string.
pub fn parse_mix(s: &str) -> Result<Vec<(Endpoint, u32)>, ResmodelError> {
    let mut mix = Vec::new();
    for part in s.split(':').filter(|p| !p.is_empty()) {
        let (name, weight) = match part.split_once('=') {
            Some((name, w)) => {
                let weight: u32 = w.parse().map_err(|_| {
                    ResmodelError::config("load mix", format!("bad weight in `{part}`"))
                })?;
                (name, weight)
            }
            None => (part, 1),
        };
        if weight == 0 {
            return Err(ResmodelError::config(
                "load mix",
                format!("zero weight in `{part}`"),
            ));
        }
        let endpoint = Endpoint::ALL
            .into_iter()
            .find(|e| e.as_str() == name)
            .ok_or_else(|| {
                ResmodelError::config("load mix", format!("unknown endpoint `{name}`"))
            })?;
        if endpoint == Endpoint::Shutdown {
            return Err(ResmodelError::config(
                "load mix",
                "`shutdown` is not a load endpoint",
            ));
        }
        mix.push((endpoint, weight));
    }
    if mix.is_empty() {
        return Err(ResmodelError::config("load mix", "empty mix"));
    }
    Ok(mix)
}

/// The schedule function of fixed mode: which mix entry and which spec
/// request `i` uses, as a pure function of the seed. Exposed so tests
/// can assert the multiset is connection-count-invariant without a
/// server.
#[must_use]
pub fn plan(seed: u64, i: u64, mix: &[(Endpoint, u32)], spec_count: usize) -> (usize, usize) {
    plan_raw(substream(seed, i), mix, spec_count)
}

/// Build the request for one schedule slot.
fn build_request(
    endpoint: Endpoint,
    spec: Option<&PipelineSpec>,
    predict_dates: &[f64],
) -> Request {
    match endpoint {
        Endpoint::Stats | Endpoint::Shutdown => Request::bare(endpoint),
        Endpoint::Predict => {
            let mut request = Request::with_spec(
                endpoint,
                spec.map_or(serde_json::Value::Null, serde_json::to_value),
            );
            request.dates = Some(predict_dates.to_vec());
            request
        }
        _ => Request::with_spec(
            endpoint,
            spec.map_or(serde_json::Value::Null, serde_json::to_value),
        ),
    }
}

/// Per-worker accumulator, merged after the scope joins.
struct WorkerStats {
    /// Parallel to the (deduplicated) endpoint list.
    requests: Vec<u64>,
    errors: Vec<u64>,
    latency: Vec<Histogram>,
}

impl WorkerStats {
    fn new(endpoints: usize) -> Self {
        WorkerStats {
            requests: vec![0; endpoints],
            errors: vec![0; endpoints],
            latency: (0..endpoints).map(|_| Histogram::new()).collect(),
        }
    }

    fn record(&mut self, slot: usize, ok: bool, elapsed_ms: f64) {
        self.requests[slot] += 1;
        if !ok {
            self.errors[slot] += 1;
        }
        self.latency[slot].record(elapsed_ms);
    }
}

/// Run the load. Workers are plain scoped threads (one blocking
/// connection each, like the daemon's thread-per-connection model);
/// an error response counts toward `errors` and the run continues.
///
/// # Errors
///
/// [`ResmodelError::Config`] on an invalid spec: no workers, empty
/// mix, neither or both of `total_requests` / `duration`, `rps`
/// without `duration`, or a spec-carrying endpoint in the mix with an
/// empty spec pool.
#[allow(clippy::too_many_lines)]
pub fn run_load(client: &Client, spec: &LoadSpec) -> Result<LoadReport, ResmodelError> {
    if spec.connections == 0 {
        return Err(ResmodelError::config(
            "loadgen",
            "need at least one connection",
        ));
    }
    if spec.mix.is_empty() {
        return Err(ResmodelError::config("loadgen", "empty endpoint mix"));
    }
    match (spec.total_requests, spec.duration) {
        (Some(_), Some(_)) => {
            return Err(ResmodelError::config(
                "loadgen",
                "set either total_requests or duration, not both",
            ));
        }
        (None, None) => {
            return Err(ResmodelError::config(
                "loadgen",
                "set total_requests (fixed mode) or duration",
            ));
        }
        _ => {}
    }
    if spec.rps.is_some() && spec.duration.is_none() {
        return Err(ResmodelError::config(
            "loadgen",
            "rps pacing needs duration mode",
        ));
    }
    let needs_specs = spec
        .mix
        .iter()
        .any(|&(e, _)| !matches!(e, Endpoint::Stats | Endpoint::Shutdown));
    if needs_specs && spec.specs.is_empty() {
        return Err(ResmodelError::config(
            "loadgen",
            "mix has spec-carrying endpoints but the spec pool is empty",
        ));
    }

    // Deduplicated endpoint list, in first-appearance mix order; a
    // map from mix index to its slot.
    let mut endpoints: Vec<Endpoint> = Vec::new();
    let mut slot_of_mix: Vec<usize> = Vec::with_capacity(spec.mix.len());
    for &(e, _) in &spec.mix {
        let slot = endpoints.iter().position(|&x| x == e).unwrap_or_else(|| {
            endpoints.push(e);
            endpoints.len() - 1
        });
        slot_of_mix.push(slot);
    }

    let mode = if spec.total_requests.is_some() {
        "fixed"
    } else if spec.rps.is_some() {
        "rps"
    } else {
        "duration"
    };
    let next = AtomicU64::new(0);
    let started = Instant::now();
    #[allow(clippy::cast_precision_loss)]
    let pace = spec
        .rps
        .map(|rps| Duration::from_secs_f64(spec.connections as f64 / rps.max(0.001)));

    let worker_stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.connections)
            .map(|w| {
                let next = &next;
                let endpoints = &endpoints;
                let slot_of_mix = &slot_of_mix;
                scope.spawn(move || {
                    let mut stats = WorkerStats::new(endpoints.len());
                    let one = |stats: &mut WorkerStats, r: u64, id: Option<String>| {
                        let (mix_idx, spec_idx) = plan_raw(r, &spec.mix, spec.specs.len());
                        let endpoint = spec.mix[mix_idx].0;
                        let mut request =
                            build_request(endpoint, spec.specs.get(spec_idx), &spec.predict_dates);
                        request.request_id = id;
                        let t0 = Instant::now();
                        let ok = client.request(&request).is_ok();
                        #[allow(clippy::cast_precision_loss)]
                        let elapsed_ms = t0.elapsed().as_secs_f64() * 1000.0;
                        stats.record(slot_of_mix[mix_idx], ok, elapsed_ms);
                    };
                    if let Some(total) = spec.total_requests {
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= total {
                                break;
                            }
                            one(
                                &mut stats,
                                substream(spec.seed, i),
                                Some(format!("q-{}", i + 1)),
                            );
                        }
                    } else if let Some(duration) = spec.duration {
                        let deadline = started + duration;
                        let worker_seed = substream(spec.seed, 0x4C4F_4144 + w as u64);
                        let mut k = 0u64;
                        while Instant::now() < deadline {
                            one(&mut stats, substream(worker_seed, k), None);
                            k += 1;
                            if let Some(period) = pace {
                                let target =
                                    started + period * u32::try_from(k).unwrap_or(u32::MAX);
                                let now = Instant::now();
                                if target > now && target < deadline {
                                    std::thread::sleep(target - now);
                                }
                            }
                        }
                    }
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(stats) => stats,
                Err(_) => WorkerStats::new(endpoints.len()),
            })
            .collect()
    });
    #[allow(clippy::cast_precision_loss)]
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;

    let mut merged: Vec<EndpointLoad> = endpoints
        .iter()
        .map(|&endpoint| EndpointLoad {
            endpoint,
            requests: 0,
            errors: 0,
            latency: Histogram::new(),
        })
        .collect();
    for stats in &worker_stats {
        for (slot, row) in merged.iter_mut().enumerate() {
            row.requests += stats.requests[slot];
            row.errors += stats.errors[slot];
            row.latency.merge(&stats.latency[slot]);
        }
    }
    let requests: u64 = merged.iter().map(|e| e.requests).sum();
    let errors: u64 = merged.iter().map(|e| e.errors).sum();
    #[allow(clippy::cast_precision_loss)]
    let served_per_sec = if wall_ms > 0.0 {
        requests as f64 / (wall_ms / 1000.0)
    } else {
        0.0
    };
    Ok(LoadReport {
        mode: mode.to_owned(),
        connections: spec.connections,
        requests,
        errors,
        wall_ms,
        served_per_sec,
        endpoints: merged,
    })
}

/// [`plan`] on an already-drawn substream value.
fn plan_raw(r: u64, mix: &[(Endpoint, u32)], spec_count: usize) -> (usize, usize) {
    let weight_sum: u64 = mix.iter().map(|&(_, w)| u64::from(w)).sum::<u64>().max(1);
    let mut pick = r % weight_sum;
    let mut mix_idx = 0;
    for (idx, &(_, w)) in mix.iter().enumerate() {
        if pick < u64::from(w) {
            mix_idx = idx;
            break;
        }
        pick -= u64::from(w);
    }
    let spec_idx = if spec_count == 0 {
        0
    } else {
        ((r >> 32) % spec_count as u64) as usize
    };
    (mix_idx, spec_idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_mix_accepts_names_and_weights() {
        let mix = parse_mix("run_pipeline=3:predict:stats=2").expect("valid mix");
        assert_eq!(
            mix,
            vec![
                (Endpoint::RunPipeline, 3),
                (Endpoint::Predict, 1),
                (Endpoint::Stats, 2),
            ]
        );
    }

    #[test]
    fn parse_mix_rejects_bad_input() {
        assert!(parse_mix("").is_err(), "empty mix");
        assert!(parse_mix("frobnicate").is_err(), "unknown endpoint");
        assert!(parse_mix("stats=0").is_err(), "zero weight");
        assert!(parse_mix("stats=x").is_err(), "non-numeric weight");
        assert!(parse_mix("shutdown").is_err(), "shutdown is not load");
    }

    #[test]
    fn plan_is_deterministic_and_in_range() {
        let mix = parse_mix("run_pipeline=2:predict:stats").expect("valid mix");
        let mut seen_mix = [0u64; 3];
        for i in 0..10_000u64 {
            let (mix_idx, spec_idx) = plan(7, i, &mix, 3);
            assert_eq!((mix_idx, spec_idx), plan(7, i, &mix, 3), "pure function");
            assert!(mix_idx < mix.len());
            assert!(spec_idx < 3);
            seen_mix[mix_idx] += 1;
        }
        // Weighted draw: run_pipeline (weight 2) should land roughly
        // twice as often as the weight-1 endpoints.
        assert!(seen_mix.iter().all(|&n| n > 1_000), "{seen_mix:?}");
        assert!(
            seen_mix[0] > seen_mix[1] && seen_mix[0] > seen_mix[2],
            "{seen_mix:?}"
        );
    }

    #[test]
    fn run_load_rejects_invalid_specs() {
        let client = Client::tcp("127.0.0.1:1");
        let specs = Vec::new();
        let mut load = LoadSpec::fixed(0, 1, specs.clone());
        assert!(run_load(&client, &load).is_err(), "zero connections");
        load.connections = 1;
        assert!(run_load(&client, &load).is_err(), "specs needed by mix");
        load.mix = vec![(Endpoint::Stats, 1)];
        load.total_requests = None;
        assert!(run_load(&client, &load).is_err(), "no mode");
        load.total_requests = Some(1);
        load.duration = Some(Duration::from_millis(1));
        assert!(run_load(&client, &load).is_err(), "both modes");
        load.total_requests = None;
        load.rps = Some(10.0);
        load.duration = None;
        assert!(run_load(&client, &load).is_err(), "rps without duration");
    }

    #[test]
    fn svc_load_summary_without_server_metrics_has_no_slo() {
        let mut latency = Histogram::new();
        latency.record(1.0);
        latency.record(2.0);
        let report = LoadReport {
            mode: "fixed".to_owned(),
            connections: 2,
            requests: 2,
            errors: 1,
            wall_ms: 10.0,
            served_per_sec: 200.0,
            endpoints: vec![EndpointLoad {
                endpoint: Endpoint::Stats,
                requests: 2,
                errors: 1,
                latency,
            }],
        };
        let block = report.svc_load_summary(None);
        assert!(block.slo.is_none());
        assert_eq!(block.hits + block.misses, 0);
        assert_eq!(block.endpoints.len(), 1);
        let row = &block.endpoints[0];
        assert_eq!(row.endpoint, "stats");
        assert!(row.p50_ms > 0.0 && row.p99_ms >= row.p50_ms);
        let summary = row.latency.as_ref().expect("non-empty histogram");
        assert_eq!(summary.name, "loadgen.stats.request_ms");
        assert_eq!(summary.count, 2);
    }
}
