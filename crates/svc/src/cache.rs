//! The content-addressed model cache.
//!
//! A cache key is `endpoint/sha256(canonical spec JSON)`: two requests
//! share an entry exactly when they are the same endpoint applied to
//! the same spec *value*, regardless of how the incoming JSON was
//! formatted. Each entry is a per-key once-cell — the first thread to
//! claim a key computes it while every concurrent requester for the
//! same key blocks on the entry's condvar, so N simultaneous identical
//! requests trigger exactly one fit (stampede protection). Bodies are
//! stored as wall-clock-zeroed [`Value`] trees, which makes replay
//! byte-exact by construction: rendering a cached tree produces the
//! identical bytes as `report.zero_timings()` + pretty-print on a cold
//! run, at any thread count (the PR-6 determinism contract).
//!
//! Failures are *not* cached: the failing entry is removed so a later
//! identical request retries, and every thread that was waiting on it
//! gets the same error. Capacity is a simple LRU over ready entries —
//! in-flight computations are never evicted.

use crate::hash::sha256_hex;
use crate::proto::Endpoint;
use resmodel::pipeline::{Pipeline, PipelineReport, PipelineSpec, PredictSpec, SourceSpec};
use resmodel::sweep::SweepSpec;
use resmodel::ResmodelError;
use resmodel_obs::{zero_wall_clock, Collector};
use resmodel_trace::MappedTrace;
use serde::Value;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// What a cache lookup produced.
#[derive(Debug, Clone)]
pub struct CacheOutcome {
    /// The wall-clock-zeroed result tree (shared, never mutated).
    pub body: Arc<Value>,
    /// `true` when the body was served without computing.
    pub hit: bool,
    /// The content address of the request's spec.
    pub spec_hash: String,
}

/// Point-in-time cache statistics for the `stats` endpoint. Kept as
/// plain atomics beside the obs counters so they work even when the
/// server runs with a disabled [`Collector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Ready entries currently held.
    pub entries: usize,
    /// The LRU capacity bound.
    pub capacity: usize,
    /// Lookups served from a ready entry (including waits on an
    /// in-flight computation of the same key).
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Ready entries dropped by the LRU bound.
    pub evictions: u64,
}

enum EntryState {
    /// The claiming thread is computing; wait on the condvar.
    Pending,
    /// Computed; the body is shared as-is.
    Ready(Arc<Value>),
    /// The computation failed; the entry is already unlinked from the
    /// map, this state only releases the threads that were waiting.
    Failed(String),
}

struct Entry {
    state: Mutex<EntryState>,
    ready: Condvar,
    /// LRU clock tick of the last lookup that touched this entry.
    last_used: AtomicU64,
}

/// Figures for the optional on-disk trace store (see
/// [`ModelCache::with_trace_dir`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStoreStats {
    /// Traces persisted to the spill directory during a compute.
    pub saves: u64,
    /// Computes that mapped a persisted trace instead of regenerating
    /// the source world.
    pub reloads: u64,
}

/// The concurrent content-addressed cache (see the module docs).
pub struct ModelCache {
    entries: Mutex<HashMap<String, Arc<Entry>>>,
    capacity: usize,
    obs: Collector,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// When set, source traces spill to `<dir>/<source-hash>.rmt` in
    /// the `resmodel.trace/1` format and later misses that share the
    /// same source+sanitize stages mmap the file back instead of
    /// regenerating the world.
    trace_dir: Option<PathBuf>,
    trace_saves: AtomicU64,
    trace_reloads: AtomicU64,
}

impl ModelCache {
    /// A cache bounded to `capacity` ready entries, instrumented
    /// through `obs` (counters `svc.cache.{hits,misses,evictions}`,
    /// gauge `svc.cache.entries`, histograms
    /// `svc.<endpoint>.request_ms`).
    #[must_use]
    pub fn new(capacity: usize, obs: &Collector) -> Self {
        ModelCache {
            entries: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            obs: obs.clone(),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            trace_dir: None,
            trace_saves: AtomicU64::new(0),
            trace_reloads: AtomicU64::new(0),
        }
    }

    /// Back derived endpoints (`predict`, `dispatch`) with an on-disk
    /// trace store rooted at `dir`.
    ///
    /// The first compute for a given source+sanitize pair persists the
    /// sanitized trace as `resmodel.trace/1`; every later miss that
    /// shares the pair — any date list, any dispatch workload — maps
    /// the file back instead of regenerating and re-sanitizing the
    /// world. Reload is byte-safe for these endpoints because their
    /// bodies are the prediction/dispatch subtrees, which depend only
    /// on the trace content and seeds. (`run_pipeline` bodies also
    /// carry the pre-sanitization world figures, which a saved trace
    /// no longer has, so that endpoint always computes from source.)
    /// The directory is created on first save; counters appear as
    /// `svc.store.{saves,reloads}` and in [`TraceStoreStats`].
    #[must_use]
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Run (or replay) a full pipeline. The body is the zeroed
    /// [`resmodel::pipeline::PipelineReport`] tree.
    ///
    /// # Errors
    ///
    /// [`ResmodelError::Svc`] naming the endpoint and content address,
    /// wrapping the pipeline's own error.
    pub fn run_pipeline(&self, spec: &PipelineSpec) -> Result<CacheOutcome, ResmodelError> {
        let hash = self.address(Endpoint::RunPipeline, &spec.canonical_json()?);
        let spec = spec.clone();
        let obs = self.obs.clone();
        self.get_or_compute(Endpoint::RunPipeline, hash, move || {
            let report = Pipeline::from_spec(spec).observe(&obs).run()?;
            Ok(serde_json::to_value(&report))
        })
    }

    /// Run (or replay) a sweep grid. The body is the zeroed
    /// [`resmodel::sweep::SweepReport`] tree.
    ///
    /// # Errors
    ///
    /// [`ResmodelError::Svc`] wrapping the sweep's own error.
    pub fn run_sweep(&self, spec: &SweepSpec) -> Result<CacheOutcome, ResmodelError> {
        let hash = self.address(Endpoint::RunSweep, &spec.canonical_json()?);
        let spec = spec.clone();
        let obs = self.obs.clone();
        self.get_or_compute(Endpoint::RunSweep, hash, move || {
            let report = spec.run_collected(resmodel::pipeline::DataPath::Columnar, &obs)?;
            Ok(serde_json::to_value(&report))
        })
    }

    /// Run a pipeline spec's dispatch stage. The body is the zeroed
    /// `DispatchReport` subtree alone.
    ///
    /// # Errors
    ///
    /// [`ResmodelError::Svc`]; a spec without a dispatch stage is
    /// rejected before computing.
    pub fn dispatch(&self, spec: &PipelineSpec) -> Result<CacheOutcome, ResmodelError> {
        if spec.dispatch.is_none() {
            return Err(ResmodelError::svc(
                Endpoint::Dispatch.as_str(),
                None,
                ResmodelError::config("pipeline spec", "dispatch stage is required"),
            ));
        }
        let hash = self.address(Endpoint::Dispatch, &spec.canonical_json()?);
        let spec = spec.clone();
        let store = self.trace_store(&spec)?;
        let obs = self.obs.clone();
        self.get_or_compute(Endpoint::Dispatch, hash, move || {
            let report = store.run(spec, &obs)?;
            let mut tree = serde_json::to_value(&report);
            match std::mem::take(&mut tree["dispatch"]) {
                Value::Null => Err(ResmodelError::config(
                    "pipeline report",
                    "dispatch stage produced no report",
                )),
                subtree => Ok(subtree),
            }
        })
    }

    /// Fit the spec and predict the requested dates: the spec's own
    /// validate/predict/dispatch stages are replaced, so any pipeline
    /// with the same source+sanitize+fit shares one derived entry per
    /// date list. The body is the zeroed prediction subtree alone.
    ///
    /// # Errors
    ///
    /// [`ResmodelError::Svc`]; a spec without a fit stage fails inside
    /// the pipeline (prediction requires a fitted model).
    pub fn predict(
        &self,
        spec: &PipelineSpec,
        dates: Vec<resmodel_trace::SimDate>,
    ) -> Result<CacheOutcome, ResmodelError> {
        let mut derived = spec.clone();
        derived.validate = None;
        derived.dispatch = None;
        derived.predict = Some(PredictSpec { dates });
        let hash = self.address(Endpoint::Predict, &derived.canonical_json()?);
        let store = self.trace_store(&derived)?;
        let obs = self.obs.clone();
        self.get_or_compute(Endpoint::Predict, hash, move || {
            let report = store.run(derived, &obs)?;
            let mut tree = serde_json::to_value(&report);
            match std::mem::take(&mut tree["predictions"]) {
                Value::Null => Err(ResmodelError::config(
                    "pipeline report",
                    "predict stage produced no report",
                )),
                subtree => Ok(subtree),
            }
        })
    }

    /// Current trace-store figures (all zero when no spill directory
    /// is configured).
    #[must_use]
    pub fn store_stats(&self) -> TraceStoreStats {
        TraceStoreStats {
            saves: self.trace_saves.load(Ordering::Relaxed),
            reloads: self.trace_reloads.load(Ordering::Relaxed),
        }
    }

    /// The spill plan for one compute: the `.rmt` path addressed by
    /// the spec's source+sanitize stages, or pass-through when no
    /// directory is configured or the source is already external
    /// (nothing to regenerate, nothing worth spilling).
    fn trace_store(&self, spec: &PipelineSpec) -> Result<TraceStorePlan<'_>, ResmodelError> {
        let path = match &self.trace_dir {
            Some(dir) if !matches!(spec.source, SourceSpec::External) => {
                let mut source_only = spec.clone();
                source_only.fit = None;
                source_only.validate = None;
                source_only.predict = None;
                source_only.dispatch = None;
                let hash = sha256_hex(source_only.canonical_json()?.as_bytes());
                Some(dir.join(format!("{hash}.rmt")))
            }
            _ => None,
        };
        Ok(TraceStorePlan { cache: self, path })
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.len(),
            capacity: self.capacity,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of entries currently held (ready or in flight).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().map(|m| m.len()).unwrap_or(0)
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The content address of a canonical spec: the endpoint is part
    /// of the hashed text, so `run_pipeline` and `dispatch` of the
    /// same spec never collide.
    fn address(&self, endpoint: Endpoint, canonical: &str) -> String {
        sha256_hex(format!("{endpoint}\n{canonical}").as_bytes())
    }

    /// The once-cell core: claim-or-wait on the entry for `hash`,
    /// compute at most once, replay forever.
    fn get_or_compute(
        &self,
        endpoint: Endpoint,
        hash: String,
        compute: impl FnOnce() -> Result<Value, ResmodelError>,
    ) -> Result<CacheOutcome, ResmodelError> {
        let started = Instant::now();
        let key = format!("{endpoint}/{hash}");
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let (entry, claimed) = {
            let mut map = self
                .entries
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match map.get(&key) {
                Some(entry) => {
                    entry.last_used.store(tick, Ordering::Relaxed);
                    (Arc::clone(entry), false)
                }
                None => {
                    let entry = Arc::new(Entry {
                        state: Mutex::new(EntryState::Pending),
                        ready: Condvar::new(),
                        last_used: AtomicU64::new(tick),
                    });
                    map.insert(key.clone(), Arc::clone(&entry));
                    (entry, true)
                }
            }
        };

        let result = if claimed {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.obs.add("svc.cache.misses", 1);
            // Mark events feed the trace (events sink + flight
            // recorder) only — never the counter section, because
            // whether a given request is the miss, a hit, or a
            // stampede wait is a scheduling fact.
            self.obs.mark("cache.miss");
            match compute() {
                Ok(mut body) => {
                    zero_wall_clock(&mut body);
                    let body = Arc::new(body);
                    let mut state = entry
                        .state
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    *state = EntryState::Ready(Arc::clone(&body));
                    drop(state);
                    entry.ready.notify_all();
                    self.enforce_capacity(&key);
                    Ok(CacheOutcome {
                        body,
                        hit: false,
                        spec_hash: hash.clone(),
                    })
                }
                Err(e) => {
                    // Unlink first so a retry can claim a fresh entry,
                    // then release the waiters with the failure text.
                    self.entries
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .remove(&key);
                    let mut state = entry
                        .state
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    *state = EntryState::Failed(e.to_string());
                    drop(state);
                    entry.ready.notify_all();
                    Err(ResmodelError::svc(endpoint.as_str(), Some(hash.clone()), e))
                }
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.obs.add("svc.cache.hits", 1);
            let mut state = entry
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // A hit that finds the entry still Pending is a stampede
            // wait: another request claimed the compute and this one
            // parks on the condvar until it lands.
            if matches!(&*state, EntryState::Pending) {
                self.obs.mark("cache.stampede_wait");
            } else {
                self.obs.mark("cache.hit");
            }
            loop {
                match &*state {
                    EntryState::Pending => {
                        state = entry
                            .ready
                            .wait(state)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    EntryState::Ready(body) => {
                        break Ok(CacheOutcome {
                            body: Arc::clone(body),
                            hit: true,
                            spec_hash: hash.clone(),
                        })
                    }
                    EntryState::Failed(message) => {
                        break Err(ResmodelError::svc(
                            endpoint.as_str(),
                            Some(hash.clone()),
                            ResmodelError::config("svc cache", message.clone()),
                        ))
                    }
                }
            }
        };

        self.obs.record(
            &format!("svc.{endpoint}.request_ms"),
            started.elapsed().as_secs_f64() * 1e3,
        );
        #[allow(clippy::cast_precision_loss)]
        let entries = self.len() as f64;
        self.obs.set_gauge("svc.cache.entries", entries);
        result
    }

    /// Spill-or-reload decision for one pipeline compute, resolved
    /// *before* the once-cell closure runs so the hash work happens
    /// outside the entry's critical path.
    fn run_with_store(
        &self,
        plan: &TraceStorePlan<'_>,
        spec: PipelineSpec,
        obs: &Collector,
    ) -> Result<PipelineReport, ResmodelError> {
        let Some(path) = &plan.path else {
            return Pipeline::from_spec(spec).observe(obs).run();
        };
        if path.is_file() {
            let mapped = Arc::new(MappedTrace::open(path)?);
            // The saved trace is post-sanitization, so the reload run
            // maps it as an external source and skips the sanitize
            // stage; everything downstream is byte-identical.
            let mut reload = spec;
            reload.source = SourceSpec::External;
            reload.sanitize = None;
            self.trace_reloads.fetch_add(1, Ordering::Relaxed);
            self.obs.add("svc.store.reloads", 1);
            return Pipeline::from_spec(reload)
                .with_mapped(mapped)
                .observe(obs)
                .run();
        }
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| {
                ResmodelError::store(
                    dir.display().to_string(),
                    format!("create trace spill directory: {e}"),
                )
            })?;
        }
        // Write to a unique temp name and rename into place, so a
        // concurrent compute for a sibling key that shares this source
        // never maps a half-written file.
        let tmp = path.with_extension(format!(
            "rmt.tmp.{}.{}",
            std::process::id(),
            self.clock.fetch_add(1, Ordering::Relaxed)
        ));
        let report = Pipeline::from_spec(spec)
            .save_trace(&tmp)
            .observe(obs)
            .run();
        match report {
            Ok(report) => {
                std::fs::rename(&tmp, path).map_err(|e| {
                    ResmodelError::store(
                        path.display().to_string(),
                        format!("publish spilled trace: {e}"),
                    )
                })?;
                self.trace_saves.fetch_add(1, Ordering::Relaxed);
                self.obs.add("svc.store.saves", 1);
                Ok(report)
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Drop least-recently-used *ready* entries until within capacity.
    /// Called with the map unlocked; `keep` (the entry just inserted)
    /// is never evicted.
    fn enforce_capacity(&self, keep: &str) {
        let mut map = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while map.len() > self.capacity {
            let victim = map
                .iter()
                .filter(|(k, entry)| {
                    k.as_str() != keep
                        && matches!(
                            *entry
                                .state
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner),
                            EntryState::Ready(_)
                        )
                })
                .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.obs.add("svc.cache.evictions", 1);
        }
    }
}

/// One compute's resolved spill decision: the `.rmt` path the source
/// hashes to, or pass-through. Resolved by [`ModelCache::trace_store`]
/// before the once-cell closure is entered, executed inside it.
struct TraceStorePlan<'a> {
    cache: &'a ModelCache,
    path: Option<PathBuf>,
}

impl TraceStorePlan<'_> {
    fn run(&self, spec: PipelineSpec, obs: &Collector) -> Result<PipelineReport, ResmodelError> {
        self.cache.run_with_store(self, spec, obs)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn cache(capacity: usize) -> ModelCache {
        ModelCache::new(capacity, &Collector::new())
    }

    /// Drive the once-cell core directly with a counting compute.
    fn probe(cache: &ModelCache, hash: &str, calls: &AtomicUsize) -> CacheOutcome {
        cache
            .get_or_compute(Endpoint::RunPipeline, hash.to_owned(), || {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(serde_json::json!({
                    "hash": Value::Str(hash.to_owned()),
                    "wall_ms": 7.5,
                }))
            })
            .unwrap()
    }

    #[test]
    fn second_lookup_is_a_hit_with_zeroed_body() {
        let c = cache(4);
        let calls = AtomicUsize::new(0);
        let cold = probe(&c, "aaaa", &calls);
        let warm = probe(&c, "aaaa", &calls);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert!(!cold.hit);
        assert!(warm.hit);
        assert_eq!(cold.spec_hash, "aaaa");
        // Bodies are the same zeroed tree, shared.
        assert!(Arc::ptr_eq(&cold.body, &warm.body));
        assert_eq!(warm.body["wall_ms"], Value::Float(0.0));
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn stampede_computes_once() {
        let c = Arc::new(cache(4));
        let calls = Arc::new(AtomicUsize::new(0));
        let outcomes: Vec<CacheOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..16)
                .map(|_| {
                    let c = Arc::clone(&c);
                    let calls = Arc::clone(&calls);
                    s.spawn(move || {
                        c.get_or_compute(Endpoint::RunPipeline, "same".to_owned(), || {
                            calls.fetch_add(1, Ordering::Relaxed);
                            // Widen the race window so waiters really wait.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            Ok(serde_json::json!({"n": 1u32}))
                        })
                        .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1, "exactly one compute");
        assert_eq!(outcomes.iter().filter(|o| !o.hit).count(), 1);
        let first = &outcomes[0].body;
        assert!(outcomes.iter().all(|o| o.body == *first));
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses), (15, 1));
    }

    #[test]
    fn failures_release_waiters_and_are_not_cached() {
        let c = cache(4);
        let err = c
            .get_or_compute(Endpoint::RunPipeline, "bad".to_owned(), || {
                Err(ResmodelError::config("pipeline spec", "boom"))
            })
            .unwrap_err();
        assert!(matches!(err, ResmodelError::Svc { .. }));
        assert_eq!(err.exit_code(), 3);
        assert!(c.is_empty(), "failures are unlinked");
        // The same key computes again — and can now succeed.
        let calls = AtomicUsize::new(0);
        let outcome = probe(&c, "bad", &calls);
        assert!(!outcome.hit);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn lru_evicts_the_coldest_ready_entry() {
        let c = cache(2);
        let calls = AtomicUsize::new(0);
        probe(&c, "a", &calls);
        probe(&c, "b", &calls);
        probe(&c, "a", &calls); // refresh "a": now "b" is coldest
        probe(&c, "c", &calls); // overflow → evict "b"
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        let before = calls.load(Ordering::Relaxed);
        probe(&c, "a", &calls);
        assert_eq!(calls.load(Ordering::Relaxed), before, "a survived");
        probe(&c, "b", &calls);
        assert_eq!(calls.load(Ordering::Relaxed), before + 1, "b was evicted");
    }

    #[test]
    fn addresses_separate_endpoints_and_content() {
        let c = cache(4);
        let canonical = r#"{"source":{"External":null}}"#;
        let a = c.address(Endpoint::RunPipeline, canonical);
        let b = c.address(Endpoint::Dispatch, canonical);
        let d = c.address(Endpoint::RunPipeline, r#"{"source":null}"#);
        assert_ne!(a, b, "same spec, different endpoint");
        assert_ne!(a, d, "same endpoint, different spec");
        assert_eq!(a.len(), 64);
        assert_eq!(a, c.address(Endpoint::RunPipeline, canonical));
    }

    #[test]
    fn predict_spills_the_trace_and_reloads_it_byte_identically() {
        let dir = std::env::temp_dir().join(format!("resmodel-svc-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let obs = Collector::new();
        let spec = PipelineSpec {
            source: resmodel::pipeline::SourceSpec::Scenario {
                scenario: resmodel::prelude::Scenario::steady_state(7),
                max_hosts: 4000,
            },
            sanitize: None,
            fit: Some(resmodel::prelude::FitConfig::yearly(2007, 2010)),
            validate: None,
            predict: None,
            dispatch: None,
        };
        let dates = vec![resmodel_trace::SimDate::from_year(2011.0)];

        // Reference body: no store configured.
        let plain = ModelCache::new(4, &obs);
        let want = plain.predict(&spec, dates.clone()).unwrap();
        assert_eq!(plain.store_stats(), TraceStoreStats::default());

        // First compute with a store: regenerates and spills.
        let spilling = ModelCache::new(4, &obs).with_trace_dir(&dir);
        let cold = spilling.predict(&spec, dates.clone()).unwrap();
        assert!(!cold.hit);
        assert_eq!(
            spilling.store_stats(),
            TraceStoreStats {
                saves: 1,
                reloads: 0
            }
        );
        assert_eq!(*cold.body, *want.body, "spilling must not change the body");

        // Fresh cache over the same directory: the memory entry is
        // gone but the trace is not — the compute maps the file back.
        let reloading = ModelCache::new(4, &obs).with_trace_dir(&dir);
        let warm = reloading.predict(&spec, dates).unwrap();
        assert!(!warm.hit, "only the trace was shared, not the entry");
        assert_eq!(
            reloading.store_stats(),
            TraceStoreStats {
                saves: 0,
                reloads: 1
            }
        );
        assert_eq!(*warm.body, *want.body, "reload must be byte-identical");

        // A different date list shares the same spilled source.
        let other = reloading
            .predict(&spec, vec![resmodel_trace::SimDate::from_year(2012.0)])
            .unwrap();
        assert!(!other.hit);
        assert_eq!(reloading.store_stats().reloads, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dispatch_requires_the_stage() {
        let c = cache(4);
        let spec = PipelineSpec {
            source: resmodel::pipeline::SourceSpec::Scenario {
                scenario: resmodel::prelude::Scenario::steady_state(1),
                max_hosts: 50,
            },
            sanitize: None,
            fit: None,
            validate: None,
            predict: None,
            dispatch: None,
        };
        let err = c.dispatch(&spec).unwrap_err();
        assert!(err.to_string().contains("dispatch stage is required"));
        assert!(c.is_empty(), "rejected before claiming an entry");
    }
}
