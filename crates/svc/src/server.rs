//! The thread-per-connection server.
//!
//! A nonblocking acceptor polls for connections (checking the shutdown
//! flag between polls) and hands each accepted stream to its own
//! handler thread. Handlers loop over request/response frames; the
//! model work inside a request runs on the shared data-parallel pool —
//! the vendored `rayon` is scope-based, so an optional `--threads`
//! override is installed per request thread and concurrent requests
//! never contend for pool ownership. One [`ModelCache`] is shared by
//! every connection, which is what turns N concurrent identical
//! requests into one fit (see [`crate::cache`]).
//!
//! Per-request instrumentation: counters `svc.requests` /
//! `svc.requests.<endpoint>` / `svc.requests.errors`, gauge
//! `svc.inflight`, and (for the endpoints the cache doesn't time
//! itself) `svc.<endpoint>.request_ms` histograms.
//!
//! Per-request *tracing*: every frame is handled under a request id —
//! the client's `request_id` when it sent one, a server-assigned
//! `r<seq>` otherwise — installed as the collector's request scope, so
//! the span tree a request produces (`svc/run_pipeline/pipeline/fit/…`)
//! and the cache's hit/miss/stampede marks all carry that id in the
//! JSONL events sink and the flight recorder. On any error response or
//! a panicking handler, the request's recent flight events are dumped
//! to `flight_out` (or stderr) for post-mortem debugging.

use crate::cache::ModelCache;
use crate::proto::{self, Endpoint, FrameError, Request, Response, PROTOCOL};
use rayon::ThreadPoolBuilder;
use resmodel::pipeline::PipelineSpec;
use resmodel::sweep::SweepSpec;
use resmodel::ResmodelError;
use resmodel_obs::{Collector, SloSpec};
use resmodel_trace::SimDate;
use serde::Value;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::Path;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often idle loops (the acceptor, handlers waiting for a frame)
/// re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// How long a frame may take to arrive *after* its first byte. A
/// mid-frame stall past this closes the connection (the stream cannot
/// be resynchronized anyway).
const FRAME_TIMEOUT: Duration = Duration::from_secs(10);

/// Default flight-recorder capacity: roughly this many recent span
/// events are retained for post-mortem dumps.
pub const DEFAULT_FLIGHT_EVENTS: usize = 4096;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// LRU capacity of the model cache, in entries.
    pub capacity: usize,
    /// Data-parallel threads installed for each request's model work;
    /// `None` uses the machine's available parallelism.
    pub threads: Option<usize>,
    /// Directory for the on-disk trace store backing the `predict`
    /// and `dispatch` endpoints (see [`ModelCache::with_trace_dir`]);
    /// `None` disables spilling.
    pub trace_dir: Option<PathBuf>,
    /// Hard cap on concurrently served connections; connections over
    /// the limit receive a typed `busy` error frame and are closed.
    /// `None` is unlimited.
    pub max_conns: Option<usize>,
    /// Flight-recorder capacity in events; 0 turns the recorder (and
    /// failure dumps) off.
    pub flight_events: usize,
    /// Where failure dumps go; `None` writes them to stderr.
    pub flight_out: Option<PathBuf>,
    /// Latency objectives evaluated in every `stats` response.
    pub slo: SloSpec,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            capacity: 64,
            threads: None,
            trace_dir: None,
            max_conns: None,
            flight_events: DEFAULT_FLIGHT_EVENTS,
            flight_out: None,
            slo: SloSpec::svc_default(),
        }
    }
}

/// State shared by the acceptor and every handler thread.
struct Shared {
    cache: ModelCache,
    obs: Collector,
    threads: Option<usize>,
    shutdown: AtomicBool,
    inflight: AtomicI64,
    /// Connections currently being served (gate for `max_conns`).
    conns: AtomicUsize,
    max_conns: Option<usize>,
    /// Connections turned away at the gate. Kept out of the counter
    /// section on purpose: rejections are scheduling accidents, and
    /// counters must stay deterministic. Surfaced as a gauge and in
    /// the `stats` body instead.
    busy_rejects: AtomicU64,
    /// Source of server-assigned request ids (`r1`, `r2`, …).
    req_seq: AtomicU64,
    slo: SloSpec,
    /// Failure-dump sink; `None` means stderr.
    flight_out: Option<Mutex<std::fs::File>>,
}

/// Where a running server is listening.
#[derive(Debug, Clone)]
pub enum ServerAddr {
    /// A TCP socket address (the *resolved* one — bind to port 0 and
    /// read the ephemeral port back from here).
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Uds(PathBuf),
}

impl std::fmt::Display for ServerAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerAddr::Tcp(a) => write!(f, "tcp://{a}"),
            #[cfg(unix)]
            ServerAddr::Uds(p) => write!(f, "unix://{}", p.display()),
        }
    }
}

/// A running server: the acceptor thread plus its shared state.
/// Dropping the handle signals shutdown but does not wait; call
/// [`ServerHandle::join`] for an orderly stop.
pub struct ServerHandle {
    addr: ServerAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Where the server is listening.
    #[must_use]
    pub fn addr(&self) -> &ServerAddr {
        &self.addr
    }

    /// The resolved TCP address, when serving TCP.
    #[must_use]
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match self.addr {
            ServerAddr::Tcp(a) => Some(a),
            #[cfg(unix)]
            ServerAddr::Uds(_) => None,
        }
    }

    /// Signal shutdown without waiting. The acceptor notices within
    /// one poll interval; idle handlers within another.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Signal shutdown and wait for the acceptor (and through it,
    /// every handler) to finish. Removes the socket file when serving
    /// a Unix-domain socket.
    pub fn join(self) {
        self.shutdown();
        self.wait();
    }

    /// Block until the server stops on its own — a `shutdown` request
    /// over the wire, or [`ServerHandle::shutdown`] from another thread
    /// — then clean up. This is what `resmodeld` serve mode parks on.
    pub fn wait(mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        #[cfg(unix)]
        if let ServerAddr::Uds(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve `resmodel.svc/1` on a TCP address (e.g. `127.0.0.1:0` for an
/// ephemeral test port). Returns once the socket is bound; the
/// acceptor runs on its own thread.
///
/// # Errors
///
/// [`ResmodelError::Svc`] (`bind` endpoint) when the address cannot be
/// bound.
pub fn serve_tcp(
    addr: &str,
    config: ServerConfig,
    obs: &Collector,
) -> Result<ServerHandle, ResmodelError> {
    let listener = TcpListener::bind(addr)
        .and_then(|l| l.local_addr().map(|a| (l, a)))
        .map_err(|e| ResmodelError::svc("bind", None, ResmodelError::io(addr, e)))?;
    let (listener, local) = listener;
    listener
        .set_nonblocking(true)
        .map_err(|e| ResmodelError::svc("bind", None, ResmodelError::io(addr, e)))?;
    let shared = shared_state(config, obs)?;
    let acceptor = spawn_acceptor(Arc::clone(&shared), move |shared| loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break None;
        }
        match listener.accept() {
            Ok((stream, _)) => break Some(stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    });
    Ok(ServerHandle {
        addr: ServerAddr::Tcp(local),
        shared,
        acceptor: Some(acceptor),
    })
}

/// Serve `resmodel.svc/1` on a Unix-domain socket path. The path must
/// not already exist; [`ServerHandle::join`] removes it.
///
/// # Errors
///
/// [`ResmodelError::Svc`] (`bind` endpoint) when the socket cannot be
/// bound.
#[cfg(unix)]
pub fn serve_uds(
    path: impl AsRef<Path>,
    config: ServerConfig,
    obs: &Collector,
) -> Result<ServerHandle, ResmodelError> {
    let path = path.as_ref().to_path_buf();
    let display = path.display().to_string();
    let listener = UnixListener::bind(&path)
        .map_err(|e| ResmodelError::svc("bind", None, ResmodelError::io(display.clone(), e)))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ResmodelError::svc("bind", None, ResmodelError::io(display, e)))?;
    let shared = shared_state(config, obs)?;
    let acceptor = spawn_acceptor(Arc::clone(&shared), move |shared| loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break None;
        }
        match listener.accept() {
            Ok((stream, _)) => break Some(stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    });
    Ok(ServerHandle {
        addr: ServerAddr::Uds(path),
        shared,
        acceptor: Some(acceptor),
    })
}

fn shared_state(config: ServerConfig, obs: &Collector) -> Result<Arc<Shared>, ResmodelError> {
    let mut cache = ModelCache::new(config.capacity, obs);
    if let Some(dir) = config.trace_dir {
        cache = cache.with_trace_dir(dir);
    }
    obs.enable_flight_recorder(config.flight_events);
    let flight_out = match &config.flight_out {
        Some(path) => Some(Mutex::new(std::fs::File::create(path).map_err(|e| {
            ResmodelError::svc(
                "bind",
                None,
                ResmodelError::io(path.display().to_string(), e),
            )
        })?)),
        None => None,
    };
    Ok(Arc::new(Shared {
        cache,
        obs: obs.clone(),
        threads: config.threads,
        shutdown: AtomicBool::new(false),
        inflight: AtomicI64::new(0),
        conns: AtomicUsize::new(0),
        max_conns: config.max_conns,
        busy_rejects: AtomicU64::new(0),
        req_seq: AtomicU64::new(0),
        slo: config.slo,
        flight_out,
    }))
}

/// Spawn the acceptor thread: `next` blocks (politely, polling the
/// shutdown flag) until the next connection, returning `None` to stop.
fn spawn_acceptor<S>(
    shared: Arc<Shared>,
    next: impl FnMut(&Shared) -> Option<S> + Send + 'static,
) -> JoinHandle<()>
where
    S: Conn + Send + 'static,
{
    std::thread::spawn(move || {
        let mut next = next;
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        while let Some(stream) = next(&shared) {
            // The connection-limit gate: counted at accept, released
            // when the handler thread finishes. Over-limit peers get
            // a typed `busy` frame instead of a silent hangup.
            if let Some(max) = shared.max_conns {
                if shared.conns.load(Ordering::Acquire) >= max {
                    refuse_busy(stream, &shared, max);
                    continue;
                }
            }
            shared.conns.fetch_add(1, Ordering::AcqRel);
            let shared = Arc::clone(&shared);
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, &shared);
                shared.conns.fetch_sub(1, Ordering::AcqRel);
            }));
            handlers.retain(|h| !h.is_finished());
        }
        for handler in handlers {
            let _ = handler.join();
        }
    })
}

/// Turn away an over-limit connection with a `busy` error frame. Runs
/// inline on the acceptor thread — deliberately: spawning a thread to
/// say "too many threads" would defeat the limit.
fn refuse_busy<S: Conn>(mut stream: S, shared: &Shared, max: usize) {
    let rejected = shared.busy_rejects.fetch_add(1, Ordering::Relaxed) + 1;
    #[allow(clippy::cast_precision_loss)]
    shared
        .obs
        .set_gauge("svc.conns.busy_rejects", rejected as f64);
    shared.obs.mark("svc.busy");
    if stream.set_blocking().is_err() {
        return;
    }
    let _ = proto::send(&mut stream, &Response::busy(max));
}

/// The transport operations a handler needs beyond `Read + Write`.
/// Implemented for TCP and Unix-domain streams.
trait Conn: Read + Write {
    /// Undo the non-blocking mode inherited from the acceptor's
    /// listener.
    fn set_blocking(&self) -> io::Result<()>;
    /// Bound how long a single `read` may wait.
    fn set_read_deadline(&self, d: Duration) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn set_blocking(&self) -> io::Result<()> {
        self.set_nonblocking(false)
    }
    fn set_read_deadline(&self, d: Duration) -> io::Result<()> {
        self.set_read_timeout(Some(d))
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn set_blocking(&self) -> io::Result<()> {
        self.set_nonblocking(false)
    }
    fn set_read_deadline(&self, d: Duration) -> io::Result<()> {
        self.set_read_timeout(Some(d))
    }
}

/// One connection's request/response loop.
fn handle_connection<S: Conn>(mut stream: S, shared: &Shared) {
    if stream.set_blocking().is_err() || stream.set_read_deadline(POLL).is_err() {
        return;
    }
    loop {
        // Wait for the next frame's first byte, watching the shutdown
        // flag while idle. Zero data is consumed until a byte arrives,
        // so polling cannot desynchronize the stream.
        let first = match poll_first_byte(&mut stream, shared) {
            Some(b) => b,
            None => return,
        };
        // A frame has started: read the rest under the frame deadline.
        if stream.set_read_deadline(FRAME_TIMEOUT).is_err() {
            return;
        }
        let frame = read_started_frame(&mut stream, first);
        // Every frame gets a request id before anything can fail, so
        // even a frame that never parses is traceable in the dump.
        let server_id = format!("r{}", shared.req_seq.fetch_add(1, Ordering::Relaxed) + 1);
        let payload = match frame {
            Ok(payload) => payload,
            Err(FrameError::Oversized { len, max }) => {
                // The announced length was never read, so the stream
                // cannot be resynchronized: answer, then close.
                let mut resp = Response::failure(
                    "?",
                    None,
                    format!("frame length {len} exceeds the {max}-byte limit"),
                );
                resp.request_id = Some(server_id.clone());
                shared.obs.add("svc.requests.errors", 1);
                dump_flight(shared, &server_id, "oversized frame");
                let _ = proto::send(&mut stream, &resp);
                return;
            }
            Err(_) => return,
        };
        let (response, shutdown) = match parse_request(&payload) {
            Ok(request) => {
                let request_id = request.request_id.clone().unwrap_or(server_id);
                let _scope = shared.obs.request_scope(&request_id);
                let (mut response, shutdown) = handle_request_caught(shared, &request);
                response.request_id = Some(request_id.clone());
                if !response.ok {
                    let reason = response.error.clone().unwrap_or_default();
                    dump_flight(shared, &request_id, &reason);
                }
                (response, shutdown)
            }
            Err(message) => {
                // The frame boundary held, so the connection survives
                // a malformed payload.
                shared.obs.add("svc.requests.errors", 1);
                let _scope = shared.obs.request_scope(&server_id);
                shared.obs.mark("svc.malformed");
                let mut resp = Response::failure("?", None, message);
                resp.request_id = Some(server_id.clone());
                dump_flight(shared, &server_id, "malformed payload");
                (resp, false)
            }
        };
        if proto::send(&mut stream, &response).is_err() {
            return;
        }
        if shutdown {
            shared.shutdown.store(true, Ordering::Release);
            return;
        }
        if stream.set_read_deadline(POLL).is_err() {
            return;
        }
    }
}

/// Read one byte, looping on timeouts while the shutdown flag is
/// clear. `None` on clean EOF, shutdown, or a transport error.
fn poll_first_byte<S: Conn>(stream: &mut S, shared: &Shared) -> Option<u8> {
    let mut byte = [0u8; 1];
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return None;
        }
        match stream.read(&mut byte) {
            Ok(0) => return None,
            Ok(_) => return Some(byte[0]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return None,
        }
    }
}

/// Read the remainder of a frame whose first prefix byte is in hand.
fn read_started_frame<S: Conn>(stream: &mut S, first: u8) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [first, 0, 0, 0];
    stream.read_exact(&mut prefix[1..]).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    })?;
    proto::read_frame_after_prefix(stream, prefix)
}

fn parse_request(payload: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("request is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| format!("request does not parse: {e}"))
}

/// [`handle_request`] behind a panic boundary: a handler that unwinds
/// (a bug in model code, not a protocol condition) answers with a
/// typed `panic` error frame instead of silently dropping the
/// connection — the flight recorder keeps the evidence.
fn handle_request_caught(shared: &Shared, request: &Request) -> (Response, bool) {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handle_request(shared, request)
    })) {
        Ok(result) => result,
        Err(panic) => {
            let message = panic_message(panic.as_ref());
            shared.obs.add("svc.requests.errors", 1);
            let mut response = Response::failure(
                &request.endpoint,
                None,
                format!("request handler panicked: {message}"),
            );
            response.code = Some("panic".to_owned());
            (response, false)
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Write the flight recorder's view of one failed request to the
/// configured sink (file or stderr): the request id, the reason, and
/// every recent event tagged with that id, in emission order.
fn dump_flight(shared: &Shared, request_id: &str, reason: &str) {
    use std::fmt::Write as _;
    let events = shared.obs.flight_events(Some(request_id));
    if !shared.obs.is_enabled() {
        return;
    }
    let mut text = String::new();
    let _ = writeln!(
        text,
        "FLIGHT request={request_id} events={} reason: {reason}",
        events.len()
    );
    for e in &events {
        let dur = e.dur_us.map(|d| format!(" dur_us={d}")).unwrap_or_default();
        let _ = writeln!(
            text,
            "FLIGHT request={request_id} seq={} t_us={} ev={} path={}{dur}",
            e.seq, e.t_us, e.ev, e.path
        );
    }
    match &shared.flight_out {
        Some(file) => {
            let mut file = match file.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            let _ = file.write_all(text.as_bytes());
            let _ = file.flush();
        }
        None => {
            let _ = io::stderr().write_all(text.as_bytes());
        }
    }
}

/// Route one request. The returned flag requests server shutdown
/// *after* the response is written.
fn handle_request(shared: &Shared, request: &Request) -> (Response, bool) {
    shared.obs.add("svc.requests", 1);
    let _inflight = InflightGuard::enter(shared);
    let _svc_span = shared.obs.span("svc");
    let result = route(shared, request);
    if !result.0.ok {
        shared.obs.add("svc.requests.errors", 1);
    }
    result
}

/// RAII in-flight accounting — drop-based so a panicking handler
/// cannot leak the gauge.
struct InflightGuard<'a> {
    shared: &'a Shared,
}

impl<'a> InflightGuard<'a> {
    fn enter(shared: &'a Shared) -> Self {
        let inflight = shared.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        #[allow(clippy::cast_precision_loss)]
        shared.obs.set_gauge("svc.inflight", inflight as f64);
        InflightGuard { shared }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let inflight = self.shared.inflight.fetch_sub(1, Ordering::Relaxed) - 1;
        #[allow(clippy::cast_precision_loss)]
        self.shared.obs.set_gauge("svc.inflight", inflight as f64);
    }
}

fn route(shared: &Shared, request: &Request) -> (Response, bool) {
    let name = request.endpoint.as_str();
    if request.proto != PROTOCOL {
        return (
            Response::failure(
                name,
                None,
                format!(
                    "unsupported protocol `{}`, this is {PROTOCOL}",
                    request.proto
                ),
            ),
            false,
        );
    }
    let Some(endpoint) = Endpoint::parse(name) else {
        return (
            Response::failure(name, None, format!("unknown endpoint `{name}`")),
            false,
        );
    };
    shared.obs.add(&format!("svc.requests.{endpoint}"), 1);
    // The endpoint span nests under `svc` (opened per request on this
    // handler thread); the pipeline's own spans nest under it in turn,
    // because the vendored rayon's `install` runs model work on the
    // calling thread — one request, one contiguous span subtree.
    let _endpoint_span = shared.obs.span(endpoint.as_str());
    match endpoint {
        Endpoint::RunPipeline => (
            cached_reply(shared, endpoint, request, |shared, spec| {
                shared.cache.run_pipeline(&spec)
            }),
            false,
        ),
        Endpoint::Dispatch => (
            cached_reply(shared, endpoint, request, |shared, spec| {
                shared.cache.dispatch(&spec)
            }),
            false,
        ),
        Endpoint::Predict => {
            let dates: Vec<SimDate> = request
                .dates
                .clone()
                .unwrap_or_default()
                .into_iter()
                .map(SimDate::from_year)
                .collect();
            if dates.is_empty() {
                return (
                    Response::failure(
                        endpoint.as_str(),
                        None,
                        "predict requires a non-empty `dates` list of fractional years",
                    ),
                    false,
                );
            }
            (
                cached_reply(shared, endpoint, request, move |shared, spec| {
                    shared.cache.predict(&spec, dates)
                }),
                false,
            )
        }
        Endpoint::RunSweep => {
            let reply = match typed_spec::<SweepSpec>(endpoint, request) {
                Ok(spec) => reply_from(
                    endpoint,
                    with_pool(shared, || shared.cache.run_sweep(&spec)),
                ),
                Err(resp) => resp,
            };
            (reply, false)
        }
        Endpoint::Stats => {
            let started = Instant::now();
            let body = stats_body(shared);
            shared.obs.record(
                "svc.stats.request_ms",
                started.elapsed().as_secs_f64() * 1e3,
            );
            (
                Response::success(endpoint.as_str(), None, None, body),
                false,
            )
        }
        Endpoint::Shutdown => (
            Response::success(endpoint.as_str(), None, None, Value::Null),
            true,
        ),
    }
}

/// Parse the request's spec as a pipeline spec and answer from the
/// cache.
fn cached_reply(
    shared: &Shared,
    endpoint: Endpoint,
    request: &Request,
    run: impl FnOnce(&Shared, PipelineSpec) -> Result<crate::cache::CacheOutcome, ResmodelError>,
) -> Response {
    match typed_spec::<PipelineSpec>(endpoint, request) {
        Ok(spec) => reply_from(endpoint, with_pool(shared, || run(shared, spec))),
        Err(resp) => resp,
    }
}

/// Deserialize the request's `spec` document, or produce the error
/// response explaining why not.
///
/// The `Err` variant is the full wire `Response` by design: it is
/// written to the socket immediately, never propagated.
#[allow(clippy::result_large_err)]
fn typed_spec<T: serde::Deserialize>(endpoint: Endpoint, request: &Request) -> Result<T, Response> {
    let Some(spec) = &request.spec else {
        return Err(Response::failure(
            endpoint.as_str(),
            None,
            format!("{endpoint} requires a `spec` document"),
        ));
    };
    serde_json::from_value(spec).map_err(|e| {
        Response::failure(
            endpoint.as_str(),
            None,
            format!("{endpoint} spec does not parse: {e}"),
        )
    })
}

fn reply_from(
    endpoint: Endpoint,
    outcome: Result<crate::cache::CacheOutcome, ResmodelError>,
) -> Response {
    match outcome {
        Ok(outcome) => Response::success(
            endpoint.as_str(),
            Some(outcome.hit),
            Some(outcome.spec_hash),
            (*outcome.body).clone(),
        ),
        Err(e) => {
            let spec_hash = match &e {
                ResmodelError::Svc { spec_hash, .. } => spec_hash.clone(),
                _ => None,
            };
            Response::failure(endpoint.as_str(), spec_hash, e.to_string())
        }
    }
}

/// Install the configured thread override (scope-based in the vendored
/// rayon: per calling thread, for the duration of `f`).
fn with_pool<R>(shared: &Shared, f: impl FnOnce() -> R) -> R {
    match shared
        .threads
        .and_then(|n| ThreadPoolBuilder::new().num_threads(n).build().ok())
    {
        Some(pool) => pool.install(f),
        None => f(),
    }
}

/// The `stats` endpoint body: cache figures, connection gate, SLO
/// verdicts, in-flight gauge, and the full metrics snapshot.
/// Wall-clock by nature — never cached, never part of a deterministic
/// report.
fn stats_body(shared: &Shared) -> Value {
    let cache = shared.cache.stats();
    let store = shared.cache.store_stats();
    let metrics = shared.obs.snapshot();
    let slo = shared.slo.evaluate(&metrics);
    Value::Map(vec![
        ("proto".to_owned(), Value::Str(PROTOCOL.to_owned())),
        (
            "cache".to_owned(),
            Value::Map(vec![
                ("entries".to_owned(), Value::UInt(cache.entries as u64)),
                ("capacity".to_owned(), Value::UInt(cache.capacity as u64)),
                ("hits".to_owned(), Value::UInt(cache.hits)),
                ("misses".to_owned(), Value::UInt(cache.misses)),
                ("evictions".to_owned(), Value::UInt(cache.evictions)),
            ]),
        ),
        (
            "store".to_owned(),
            Value::Map(vec![
                ("saves".to_owned(), Value::UInt(store.saves)),
                ("reloads".to_owned(), Value::UInt(store.reloads)),
            ]),
        ),
        (
            "conns".to_owned(),
            Value::Map(vec![
                (
                    "active".to_owned(),
                    Value::UInt(shared.conns.load(Ordering::Relaxed) as u64),
                ),
                (
                    "max".to_owned(),
                    match shared.max_conns {
                        Some(max) => Value::UInt(max as u64),
                        None => Value::Null,
                    },
                ),
                (
                    "busy_rejects".to_owned(),
                    Value::UInt(shared.busy_rejects.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        (
            "inflight".to_owned(),
            Value::Int(shared.inflight.load(Ordering::Relaxed)),
        ),
        ("slo".to_owned(), serde_json::to_value(&slo)),
        ("metrics".to_owned(), serde_json::to_value(&metrics)),
    ])
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.capacity > 0);
        assert!(c.threads.is_none());
    }

    #[test]
    fn addr_displays_scheme() {
        let a = ServerAddr::Tcp("127.0.0.1:8080".parse().unwrap());
        assert_eq!(a.to_string(), "tcp://127.0.0.1:8080");
        #[cfg(unix)]
        {
            let u = ServerAddr::Uds(PathBuf::from("/tmp/resmodel.sock"));
            assert_eq!(u.to_string(), "unix:///tmp/resmodel.sock");
        }
    }
}
