//! # resmodel-baselines
//!
//! The two comparator host models of the paper's Section VII utility
//! simulation:
//!
//! * [`NormalModel`] — "a simple model which uses extrapolation of the
//!   values in Figure 2 and samples resource values from uncorrelated
//!   normal distributions (log-normal for disk space)".
//! * [`GridModel`] — "based on the Grid resource model by Kee et al.
//!   \[SC'04\]": log-normal processor speeds, a time- and
//!   processor-dependent memory model, an **exponential growth model
//!   for (total) disk space**, and a mix of older/newer hosts based on
//!   the average host lifetime. Modelling *total* instead of
//!   *available* disk is what makes it overestimate P2P utility by
//!   ~50% in Fig 15.
//!
//! Both implement [`resmodel_core::HostGenerator`], so the allocation
//! simulator treats them interchangeably with the correlated model.
//!
//! ```
//! use resmodel_baselines::NormalModel;
//! use resmodel_core::HostGenerator;
//! use resmodel_trace::SimDate;
//!
//! let model = NormalModel::paper_like();
//! let hosts = model.generate_population(SimDate::from_year(2010.0), 100, 1);
//! assert_eq!(hosts.len(), 100);
//! ```

#![warn(clippy::unwrap_used)]

pub mod grid;
pub mod moments;
pub mod normal;

pub use grid::GridModel;
pub use moments::ResourceMomentLaws;
pub use normal::NormalModel;
