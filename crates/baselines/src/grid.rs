//! The Kee et al. Grid resource model, as described in the paper's
//! Section VII.
//!
//! "This model uses a log-normal distribution for processors, a time
//! and processor dependent model of memory and an exponential growth
//! model for disk space. […] To make the comparison fair, we also
//! update this model with more recent values from our analysis and
//! generate a mix of older/newer hosts based on average host lifetime."
//!
//! The model's characteristic failure in Fig 15 is disk: Grid resource
//! synthesis models the growth of **total** disk capacity, not the
//! *available* space a volunteer host actually exposes, so the P2P
//! workload's utility is overestimated by ~46–57%.

use crate::moments::ResourceMomentLaws;
use rand::{Rng, RngExt};
use resmodel_core::{GeneratedHost, HostGenerator};
use resmodel_stats::distributions::LogNormal;
use resmodel_stats::{Distribution, StatsError};
use resmodel_trace::{SimDate, Trace};
use serde::{Deserialize, Serialize};

/// Kee-style Grid resource generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridModel {
    laws: ResourceMomentLaws,
    /// Mean host age (days) used for the old/new hardware mixture.
    mean_host_age_days: f64,
    /// Total-disk inflation over available disk (the model tracks
    /// capacity, not free space).
    total_disk_factor: f64,
}

impl GridModel {
    /// Build from moment laws with the paper's mixture settings (mean
    /// host lifetime 192 days, total ≈ 2× available disk).
    pub fn new(laws: ResourceMomentLaws) -> Self {
        Self {
            laws,
            mean_host_age_days: 192.4,
            total_disk_factor: 2.0,
        }
    }

    /// Fit the underlying moment laws from a trace.
    ///
    /// # Errors
    ///
    /// Propagates [`ResourceMomentLaws::fit`] failures.
    pub fn fit(trace: &Trace, dates: &[SimDate]) -> Result<Self, StatsError> {
        Ok(Self::new(ResourceMomentLaws::fit(trace, dates)?))
    }

    /// Paper-published laws variant.
    pub fn paper_like() -> Self {
        Self::new(ResourceMomentLaws::paper_like())
    }

    /// The underlying moment laws.
    pub fn laws(&self) -> &ResourceMomentLaws {
        &self.laws
    }

    /// Override the mean host age of the hardware mixture.
    pub fn with_mean_host_age(mut self, days: f64) -> Self {
        self.mean_host_age_days = days;
        self
    }

    /// Sample a log-normal with the given `(mean, variance)`, falling
    /// back to the mean for degenerate inputs.
    fn lognormal_draw(pair: (f64, f64), rng: &mut dyn Rng) -> f64 {
        let (mean, var) = pair;
        LogNormal::from_mean_variance(mean.max(1e-6), var.max(1e-12))
            .map(|d| d.sample(rng))
            .unwrap_or(mean)
    }
}

impl HostGenerator for GridModel {
    fn label(&self) -> &'static str {
        "grid"
    }

    fn generate_host(&self, date: SimDate, rng: &mut dyn Rng) -> GeneratedHost {
        // Old/new mixture: hardware is as old as the host is.
        let u: f64 = rng.random::<f64>();
        let age_days = -(1.0 - u).ln() * self.mean_host_age_days;
        let eff = SimDate::from_days((date.days() - age_days).max(0.0));

        // Processor count: log-normal rounded to a power of two (grid
        // nodes come in 1/2/4/8-way configurations).
        let raw_cores = Self::lognormal_draw(self.laws.cores.at(eff), rng).max(1.0);
        let cores = (raw_cores.log2().round().exp2() as u32).clamp(1, 16);

        // Memory: time- and processor-dependent — per-processor memory
        // base times processor count, with log-normal dispersion.
        let (mem_mean, mem_var) = self.laws.memory_mb.at(eff);
        let (core_mean, _) = self.laws.cores.at(eff);
        let per_proc = mem_mean / core_mean.max(0.5);
        let rel_sigma = (mem_var.sqrt() / mem_mean).clamp(0.1, 1.0);
        let noise = LogNormal::from_mean_variance(1.0, rel_sigma * rel_sigma)
            .map(|d| d.sample(rng))
            .unwrap_or(1.0);
        let memory_mb = (per_proc * cores as f64 * noise).max(64.0);

        // Processor speeds: log-normal as Kee prescribes, with this
        // paper's estimated moments.
        let whetstone = Self::lognormal_draw(self.laws.whetstone.at(eff), rng).max(1.0);
        let dhrystone = Self::lognormal_draw(self.laws.dhrystone.at(eff), rng).max(1.0);

        // Disk: exponential growth of *capacity* — systematically larger
        // than the available space the other models target.
        let (am, av) = self.laws.disk_gb.at(eff);
        let disk = Self::lognormal_draw(
            (
                am * self.total_disk_factor,
                av * self.total_disk_factor * self.total_disk_factor,
            ),
            rng,
        );

        GeneratedHost {
            cores,
            memory_mb,
            whetstone_mips: whetstone,
            dhrystone_mips: dhrystone,
            avail_disk_gb: disk.max(0.01),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn hosts_are_valid_powers_of_two() {
        let m = GridModel::paper_like();
        let pop = m.generate_population(SimDate::from_year(2010.0), 3000, 3);
        for h in &pop {
            assert!(h.cores.is_power_of_two() && h.cores <= 16);
            assert!(h.memory_mb >= 64.0);
            assert!(h.avail_disk_gb > 0.0);
        }
    }

    #[test]
    fn disk_overestimates_available_space() {
        let m = GridModel::paper_like();
        let date = SimDate::from_year(2010.0);
        let pop = m.generate_population(date, 20_000, 4);
        let mean_disk = pop.iter().map(|h| h.avail_disk_gb).sum::<f64>() / pop.len() as f64;
        // Actual available mean at 2010 per Table VI ≈ 92.6 GB; the grid
        // model's capacity law should land far above it (its age mixture
        // pulls it down somewhat from the full 2×).
        let actual = 31.59 * (0.2691f64 * 4.0).exp();
        assert!(
            mean_disk > 1.4 * actual,
            "grid disk {mean_disk} vs actual available {actual}"
        );
    }

    #[test]
    fn age_mixture_lags_fresh_hardware() {
        // With a large mean age, generated speeds should lag the
        // current-date law noticeably.
        let m = GridModel::paper_like().with_mean_host_age(730.0);
        let date = SimDate::from_year(2010.0);
        let pop = m.generate_population(date, 20_000, 5);
        let mean_dhry = pop.iter().map(|h| h.dhrystone_mips).sum::<f64>() / pop.len() as f64;
        let fresh = 2064.0 * (0.1709f64 * 4.0).exp();
        assert!(mean_dhry < 0.9 * fresh, "dhry {mean_dhry} vs fresh {fresh}");
    }

    #[test]
    fn memory_scales_with_cores() {
        let m = GridModel::paper_like();
        let pop = m.generate_population(SimDate::from_year(2009.0), 20_000, 6);
        let mean_pcm_of = |c: u32| {
            let xs: Vec<f64> = pop
                .iter()
                .filter(|h| h.cores == c)
                .map(|h| h.memory_mb)
                .collect();
            if xs.is_empty() {
                return f64::NAN;
            }
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let m1 = mean_pcm_of(1);
        let m4 = mean_pcm_of(4);
        if m1.is_finite() && m4.is_finite() {
            assert!(m4 > 2.0 * m1, "memory must scale with cores: {m1} vs {m4}");
        }
    }

    #[test]
    fn label() {
        assert_eq!(GridModel::paper_like().label(), "grid");
    }
}
