//! The uncorrelated normal-distribution baseline model.
//!
//! "A simple model which uses extrapolation of the values in Figure 2
//! and samples resource values from uncorrelated normal distributions
//! (log-normal for disk space)" — paper, Section VII.

use crate::moments::ResourceMomentLaws;
use rand::Rng;
use resmodel_core::{GeneratedHost, HostGenerator};
use resmodel_stats::distributions::{LogNormal, Normal};
use resmodel_stats::{Distribution, StatsError};
use resmodel_trace::{SimDate, Trace};
use serde::{Deserialize, Serialize};

/// Uncorrelated normal baseline: every resource drawn independently
/// from a normal (log-normal for disk) whose moments extrapolate the
/// Fig 2 series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalModel {
    laws: ResourceMomentLaws,
}

impl NormalModel {
    /// Build from pre-computed moment laws.
    pub fn new(laws: ResourceMomentLaws) -> Self {
        Self { laws }
    }

    /// Fit the moment laws from a trace (the honest way to build the
    /// baseline for an experiment).
    ///
    /// # Errors
    ///
    /// Propagates [`ResourceMomentLaws::fit`] failures.
    pub fn fit(trace: &Trace, dates: &[SimDate]) -> Result<Self, StatsError> {
        Ok(Self::new(ResourceMomentLaws::fit(trace, dates)?))
    }

    /// The paper-published moment laws (for doc examples and quick
    /// starts without a trace).
    pub fn paper_like() -> Self {
        Self::new(ResourceMomentLaws::paper_like())
    }

    /// The underlying moment laws.
    pub fn laws(&self) -> &ResourceMomentLaws {
        &self.laws
    }
}

impl HostGenerator for NormalModel {
    fn label(&self) -> &'static str {
        "normal"
    }

    fn generate_host(&self, date: SimDate, rng: &mut dyn Rng) -> GeneratedHost {
        let draw = |pair: (f64, f64), rng: &mut dyn Rng| -> f64 {
            let (mean, var) = pair;
            match Normal::from_mean_variance(mean, var.max(1e-12)) {
                Ok(d) => d.sample(rng),
                Err(_) => mean,
            }
        };
        let cores = draw(self.laws.cores.at(date), rng).round().max(1.0) as u32;
        let memory_mb = draw(self.laws.memory_mb.at(date), rng).max(64.0);
        let whetstone = draw(self.laws.whetstone.at(date), rng).max(1.0);
        let dhrystone = draw(self.laws.dhrystone.at(date), rng).max(1.0);
        let (dm, dv) = self.laws.disk_gb.at(date);
        let disk = LogNormal::from_mean_variance(dm.max(1e-6), dv.max(1e-12))
            .map(|d| d.sample(rng))
            .unwrap_or(dm);
        GeneratedHost {
            cores,
            memory_mb,
            whetstone_mips: whetstone,
            dhrystone_mips: dhrystone,
            avail_disk_gb: disk.max(0.01),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use resmodel_stats::correlation::pearson;

    #[test]
    fn population_moments_track_laws() {
        let m = NormalModel::paper_like();
        let date = SimDate::from_year(2010.0);
        let pop = m.generate_population(date, 20_000, 5);
        let mean_mem = pop.iter().map(|h| h.memory_mb).sum::<f64>() / pop.len() as f64;
        assert!((mean_mem - 2376.0).abs() / 2376.0 < 0.05, "mem {mean_mem}");
        let mean_dhry = pop.iter().map(|h| h.dhrystone_mips).sum::<f64>() / pop.len() as f64;
        let expect = 2064.0 * (0.1709f64 * 4.0).exp();
        assert!(
            (mean_dhry - expect).abs() / expect < 0.05,
            "dhry {mean_dhry}"
        );
    }

    #[test]
    fn resources_are_uncorrelated() {
        let m = NormalModel::paper_like();
        let pop = m.generate_population(SimDate::from_year(2009.0), 20_000, 6);
        let cores: Vec<f64> = pop.iter().map(|h| h.cores as f64).collect();
        let mem: Vec<f64> = pop.iter().map(|h| h.memory_mb).collect();
        let whet: Vec<f64> = pop.iter().map(|h| h.whetstone_mips).collect();
        let dhry: Vec<f64> = pop.iter().map(|h| h.dhrystone_mips).collect();
        // The defining weakness of this baseline: no correlations.
        assert!(pearson(&cores, &mem).unwrap().abs() < 0.05);
        assert!(pearson(&whet, &dhry).unwrap().abs() < 0.05);
        assert!(pearson(&mem, &whet).unwrap().abs() < 0.05);
    }

    #[test]
    fn hosts_are_valid() {
        let m = NormalModel::paper_like();
        let pop = m.generate_population(SimDate::from_year(2006.0), 2000, 7);
        for h in pop {
            assert!(h.cores >= 1);
            assert!(h.memory_mb >= 64.0);
            assert!(h.whetstone_mips >= 1.0 && h.dhrystone_mips >= 1.0);
            assert!(h.avail_disk_gb > 0.0);
        }
    }

    #[test]
    fn label() {
        assert_eq!(NormalModel::paper_like().label(), "normal");
    }
}
