//! Per-resource moment evolution laws shared by both baselines.
//!
//! Both comparator models need, for each of the five resources, the
//! mean and variance as a function of time — the "extrapolation of the
//! values in Figure 2" the paper describes. Each moment follows the
//! same exponential law `a·e^{b(year−2006)}` used throughout the paper.

use resmodel_core::model::MomentLaw;
use resmodel_stats::describe::Summary;
use resmodel_stats::regression::exp_law_fit;
use resmodel_stats::StatsError;
use resmodel_trace::store::ResourceColumn;
use resmodel_trace::{SimDate, Trace};
use serde::{Deserialize, Serialize};

/// Mean and variance laws for one resource.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MomentPair {
    /// Evolution of the mean.
    pub mean: MomentLaw,
    /// Evolution of the variance.
    pub variance: MomentLaw,
}

impl MomentPair {
    /// `(mean, variance)` at `date`.
    pub fn at(&self, date: SimDate) -> (f64, f64) {
        (self.mean.at(date), self.variance.at(date))
    }
}

/// Moment laws for all five resources.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceMomentLaws {
    /// Core count.
    pub cores: MomentPair,
    /// Total memory, MB.
    pub memory_mb: MomentPair,
    /// Whetstone MIPS.
    pub whetstone: MomentPair,
    /// Dhrystone MIPS.
    pub dhrystone: MomentPair,
    /// Available disk, GB.
    pub disk_gb: MomentPair,
}

impl ResourceMomentLaws {
    /// Fit all ten laws from population snapshots of `trace` at
    /// `dates`.
    ///
    /// # Errors
    ///
    /// Fails when a sample date has an empty population or a moment
    /// series is degenerate.
    pub fn fit(trace: &Trace, dates: &[SimDate]) -> Result<Self, StatsError> {
        let fit_pair = |col: ResourceColumn| -> Result<MomentPair, StatsError> {
            let mut ts = Vec::new();
            let mut means = Vec::new();
            let mut vars = Vec::new();
            for &d in dates {
                let data = trace.column_at(d, col);
                let s = Summary::of(&data)?;
                ts.push(d.years_since_2006());
                means.push(s.mean);
                vars.push(s.variance);
            }
            Ok(MomentPair {
                mean: exp_law_fit(&ts, &means)?.into(),
                variance: exp_law_fit(&ts, &vars)?.into(),
            })
        };
        Ok(Self {
            cores: fit_pair(ResourceColumn::Cores)?,
            memory_mb: fit_pair(ResourceColumn::Memory)?,
            whetstone: fit_pair(ResourceColumn::Whetstone)?,
            dhrystone: fit_pair(ResourceColumn::Dhrystone)?,
            disk_gb: fit_pair(ResourceColumn::Disk)?,
        })
    }

    /// Laws consistent with the paper's published statistics: benchmark
    /// and disk laws straight from Table VI, cores and memory matched to
    /// the Fig 2 endpoints (cores 1.28 → 2.17, memory 846 MB → 2376 MB
    /// over 2006–2010).
    pub fn paper_like() -> Self {
        // Solve a·e^{4b} for the Fig 2 endpoints.
        let law = |v2006: f64, v2010: f64| MomentLaw::new(v2006, (v2010 / v2006).ln() / 4.0);
        Self {
            cores: MomentPair {
                mean: law(1.28, 2.17),
                // Fig 2's error bars: σ ≈ 0.6 → 1.7 over the period.
                variance: law(0.36, 2.9),
            },
            memory_mb: MomentPair {
                mean: law(846.0, 2376.0),
                variance: law(600.0 * 600.0, 2000.0 * 2000.0),
            },
            whetstone: MomentPair {
                mean: MomentLaw::new(1179.0, 0.1157),
                variance: MomentLaw::new(3.237e5, 0.1057),
            },
            dhrystone: MomentPair {
                mean: MomentLaw::new(2064.0, 0.1709),
                variance: MomentLaw::new(1.379e6, 0.3313),
            },
            disk_gb: MomentPair {
                mean: MomentLaw::new(31.59, 0.2691),
                variance: MomentLaw::new(2890.0, 0.5224),
            },
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn paper_like_matches_fig2_endpoints() {
        let laws = ResourceMomentLaws::paper_like();
        let d2006 = SimDate::from_year(2006.0);
        let d2010 = SimDate::from_year(2010.0);
        assert!((laws.cores.mean.at(d2006) - 1.28).abs() < 1e-9);
        assert!((laws.cores.mean.at(d2010) - 2.17).abs() < 1e-9);
        assert!((laws.memory_mb.mean.at(d2010) - 2376.0).abs() < 1e-6);
        assert!((laws.disk_gb.mean.at(d2006) - 31.59).abs() < 1e-9);
    }

    #[test]
    fn moments_grow() {
        let laws = ResourceMomentLaws::paper_like();
        let (m6, v6) = laws.dhrystone.at(SimDate::from_year(2006.0));
        let (m10, v10) = laws.dhrystone.at(SimDate::from_year(2010.0));
        assert!(m10 > m6 && v10 > v6);
    }

    #[test]
    fn fit_recovers_from_synthetic_trace() {
        use resmodel_core::{HostGenerator, HostModel};
        use resmodel_trace::{HostRecord, ResourceSnapshot};
        // Sample the paper model into a trace, then fit.
        let model = HostModel::paper();
        let mut trace = Trace::new();
        let mut id = 0u64;
        for year in 2006..=2010 {
            let date = SimDate::from_year(year as f64);
            for h in model.generate_population(date, 800, year as u64) {
                let mut rec = HostRecord::new(id.into(), date + -10.0);
                for dt in [-5.0, 5.0] {
                    rec.record(ResourceSnapshot {
                        t: date + dt,
                        cores: h.cores,
                        memory_mb: h.memory_mb,
                        whetstone_mips: h.whetstone_mips,
                        dhrystone_mips: h.dhrystone_mips,
                        avail_disk_gb: h.avail_disk_gb,
                        total_disk_gb: h.avail_disk_gb * 2.0,
                    });
                }
                trace.push(rec);
                id += 1;
            }
        }
        let dates: Vec<SimDate> = (2006..=2010)
            .map(|y| SimDate::from_year(y as f64))
            .collect();
        let laws = ResourceMomentLaws::fit(&trace, &dates).unwrap();
        let (dm, _) = laws.dhrystone.at(SimDate::from_year(2006.0));
        assert!((dm - 2064.0).abs() / 2064.0 < 0.1, "dhry mean {dm}");
        let (km, _) = laws.disk_gb.at(SimDate::from_year(2008.0));
        let expect = 31.59 * (0.2691f64 * 2.0).exp();
        assert!((km - expect).abs() / expect < 0.15, "disk mean {km}");
    }

    #[test]
    fn fit_errors_on_empty_trace() {
        let dates = vec![SimDate::from_year(2006.0)];
        assert!(ResourceMomentLaws::fit(&Trace::new(), &dates).is_err());
    }
}
