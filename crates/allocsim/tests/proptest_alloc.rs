//! Property-based tests of the allocation simulator: partition
//! invariants and utility algebra under arbitrary host populations.

use proptest::prelude::*;
use resmodel_allocsim::{allocate_round_robin, utility, AppProfile};
use resmodel_core::GeneratedHost;

fn host_strategy() -> impl Strategy<Value = GeneratedHost> {
    (
        1u32..9,
        128.0..16384.0f64,
        100.0..5000.0f64,
        200.0..10000.0f64,
        0.1..2000.0f64,
    )
        .prop_map(|(cores, mem, whet, dhry, disk)| GeneratedHost {
            cores,
            memory_mb: mem,
            whetstone_mips: whet,
            dhrystone_mips: dhry,
            avail_disk_gb: disk,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn allocation_partitions_hosts(hosts in prop::collection::vec(host_strategy(), 0..80)) {
        let alloc = allocate_round_robin(&AppProfile::ALL, &hosts);
        prop_assert_eq!(alloc.assigned_count(), hosts.len());
        let mut seen = vec![false; hosts.len()];
        for app_hosts in &alloc.assigned {
            for &i in app_hosts {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Round robin never leaves one app more than 1 host ahead.
        let counts: Vec<usize> = alloc.assigned.iter().map(|a| a.len()).collect();
        let max = counts.iter().max().copied().unwrap_or(0);
        let min = counts.iter().min().copied().unwrap_or(0);
        prop_assert!(max - min <= 1, "unfair counts {counts:?}");
    }

    #[test]
    fn total_utility_is_sum_of_assigned(hosts in prop::collection::vec(host_strategy(), 1..40)) {
        let alloc = allocate_round_robin(&AppProfile::ALL, &hosts);
        for (i, app) in AppProfile::ALL.iter().enumerate() {
            let expect: f64 = alloc.assigned[i].iter().map(|&idx| utility(app, &hosts[idx])).sum();
            prop_assert!((alloc.utility_of(i) - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn utility_positive_and_finite(h in host_strategy()) {
        for app in AppProfile::ALL {
            let u = utility(&app, &h);
            prop_assert!(u.is_finite() && u > 0.0);
        }
    }

    #[test]
    fn utility_scales_multiplicatively_in_disk(h in host_strategy(), k in 1.0..10.0f64) {
        let mut scaled = h;
        scaled.avail_disk_gb *= k;
        for app in AppProfile::ALL {
            let ratio = utility(&app, &scaled) / utility(&app, &h);
            prop_assert!((ratio - k.powf(app.disk)).abs() < 1e-9);
        }
    }

    #[test]
    fn dominant_host_dominates_utility(h in host_strategy()) {
        let mut better = h;
        better.cores = (h.cores * 2).min(64);
        better.memory_mb *= 2.0;
        better.whetstone_mips *= 2.0;
        better.dhrystone_mips *= 2.0;
        better.avail_disk_gb *= 2.0;
        for app in AppProfile::ALL {
            prop_assert!(utility(&app, &better) > utility(&app, &h));
        }
    }

    #[test]
    fn first_pick_is_argmax(hosts in prop::collection::vec(host_strategy(), 4..40)) {
        // The first application's first pick must be its best host.
        let alloc = allocate_round_robin(&AppProfile::ALL, &hosts);
        let first_app = &AppProfile::ALL[0];
        let best = (0..hosts.len())
            .max_by(|&a, &b| {
                utility(first_app, &hosts[a])
                    .partial_cmp(&utility(first_app, &hosts[b]))
                    .unwrap()
            })
            .unwrap();
        let first_pick = alloc.assigned[0][0];
        prop_assert!(
            (utility(first_app, &hosts[first_pick]) - utility(first_app, &hosts[best])).abs()
                < 1e-12
        );
    }
}
