//! # resmodel-allocsim
//!
//! The paper's Section VII simulation-based validation: a Cobb–Douglas
//! utility model of Internet-distributed applications, a greedy
//! round-robin resource allocator, and the Fig 15 experiment comparing
//! how well each host model predicts the utility an application would
//! extract from the real host population.
//!
//! ```
//! use resmodel_allocsim::{AppProfile, utility};
//! use resmodel_core::GeneratedHost;
//!
//! let host = GeneratedHost {
//!     cores: 4,
//!     memory_mb: 4096.0,
//!     whetstone_mips: 2000.0,
//!     dhrystone_mips: 4000.0,
//!     avail_disk_gb: 100.0,
//! };
//! let u = utility(&AppProfile::SETI_AT_HOME, &host);
//! assert!(u > 0.0);
//! ```

#![warn(clippy::unwrap_used)]

pub mod allocator;
pub mod experiment;
pub mod policy;
pub mod profile;

pub use allocator::{allocate_round_robin, Allocation};
pub use experiment::{run_utility_experiment, ModelSeries, UtilityExperimentConfig};
pub use policy::{allocate, Policy};
pub use profile::{utility, AppProfile};
