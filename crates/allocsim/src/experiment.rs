//! The Fig 15 experiment: per-month, per-application % difference
//! between the total utility predicted by each host model and the
//! utility computed from the actual host population.

use crate::allocator::allocate_round_robin;
use crate::profile::AppProfile;
use resmodel_core::{GeneratedHost, HostGenerator};
use resmodel_error::ResmodelError;
use resmodel_trace::{SimDate, Trace};
use serde::{Deserialize, Serialize};

/// Configuration of the utility experiment.
#[derive(Debug, Clone, Serialize)]
pub struct UtilityExperimentConfig {
    /// Evaluation dates (the paper uses monthly January–September
    /// 2010).
    pub dates: Vec<SimDate>,
    /// Applications competing for hosts (paper: Table IX's four).
    pub apps: Vec<AppProfile>,
    /// Seed for the generated populations.
    pub seed: u64,
}

impl Default for UtilityExperimentConfig {
    fn default() -> Self {
        Self {
            dates: (0..9)
                .map(|m| SimDate::from_year(2010.0 + m as f64 / 12.0))
                .collect(),
            apps: AppProfile::ALL.to_vec(),
            seed: 1,
        }
    }
}

/// One cell of the Fig 15 result: a model's error for one application
/// at one date.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UtilityDiff {
    /// Evaluation date.
    pub date: SimDate,
    /// Utility of the application on the model-generated hosts.
    pub model_utility: f64,
    /// Utility on the actual hosts.
    pub actual_utility: f64,
    /// `|model − actual| / actual × 100`.
    pub pct_diff: f64,
}

/// A model's full Fig 15 series.
#[derive(Debug, Clone, Serialize)]
pub struct ModelSeries {
    /// Model label (from [`HostGenerator::label`]).
    pub model: &'static str,
    /// `diffs[a]` — the per-date series of application `a` (in
    /// [`UtilityExperimentConfig::apps`] order).
    pub diffs: Vec<Vec<UtilityDiff>>,
}

impl ModelSeries {
    /// `(min, max)` % difference across the series of application `a`.
    ///
    /// # Panics
    ///
    /// Panics when the application index is out of range or its series
    /// is empty.
    pub fn range_of(&self, app_index: usize) -> (f64, f64) {
        let series = &self.diffs[app_index];
        assert!(!series.is_empty(), "empty series");
        let min = series
            .iter()
            .map(|d| d.pct_diff)
            .fold(f64::INFINITY, f64::min);
        let max = series.iter().map(|d| d.pct_diff).fold(0.0, f64::max);
        (min, max)
    }

    /// Mean % difference across dates for application `a`.
    ///
    /// # Panics
    ///
    /// Panics when the application index is out of range or its series
    /// is empty.
    pub fn mean_of(&self, app_index: usize) -> f64 {
        let series = &self.diffs[app_index];
        assert!(!series.is_empty(), "empty series");
        series.iter().map(|d| d.pct_diff).sum::<f64>() / series.len() as f64
    }
}

/// Run the Fig 15 experiment: at each date, allocate the actual trace
/// population and each model's generated population (same size) to the
/// applications, then report the % utility differences.
///
/// # Errors
///
/// Returns a [`ResmodelError::Config`] when a date has an empty actual
/// population (the comparison would be undefined).
pub fn run_utility_experiment(
    trace: &Trace,
    generators: &[&dyn HostGenerator],
    config: &UtilityExperimentConfig,
) -> Result<Vec<ModelSeries>, ResmodelError> {
    let mut out: Vec<ModelSeries> = generators
        .iter()
        .map(|g| ModelSeries {
            model: g.label(),
            diffs: vec![Vec::new(); config.apps.len()],
        })
        .collect();

    for &date in &config.dates {
        let actual_hosts: Vec<GeneratedHost> = trace
            .population_at(date)
            .iter()
            .map(GeneratedHost::from)
            .collect();
        if actual_hosts.is_empty() {
            return Err(ResmodelError::config(
                "utility experiment",
                format!("no active hosts at {date}"),
            ));
        }
        let actual_alloc = allocate_round_robin(&config.apps, &actual_hosts);

        for (g, series) in generators.iter().zip(&mut out) {
            let generated = g.generate_population(date, actual_hosts.len(), config.seed);
            let alloc = allocate_round_robin(&config.apps, &generated);
            for a in 0..config.apps.len() {
                let actual = actual_alloc.utility_of(a);
                let model = alloc.utility_of(a);
                series.diffs[a].push(UtilityDiff {
                    date,
                    model_utility: model,
                    actual_utility: actual,
                    pct_diff: (model - actual).abs() / actual.max(f64::MIN_POSITIVE) * 100.0,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A fake generator that replays the actual population (perfect
    /// model) or a scaled version of it.
    struct Replay {
        hosts: Vec<GeneratedHost>,
        disk_scale: f64,
        label: &'static str,
    }

    impl HostGenerator for Replay {
        fn label(&self) -> &'static str {
            self.label
        }

        fn generate_host(&self, _date: SimDate, rng: &mut dyn Rng) -> GeneratedHost {
            let idx = rand::RngExt::random_range(rng, 0..self.hosts.len());
            let mut h = self.hosts[idx];
            h.avail_disk_gb *= self.disk_scale;
            h
        }
    }

    fn toy_trace() -> Trace {
        use resmodel_trace::{HostRecord, ResourceSnapshot};
        let mut trace = Trace::new();
        for i in 0..400u64 {
            let start = SimDate::from_year(2009.5);
            let mut rec = HostRecord::new(i.into(), start);
            for &t in &[2009.6, 2010.9] {
                rec.record(ResourceSnapshot {
                    t: SimDate::from_year(t),
                    cores: 1 + (i % 4) as u32,
                    memory_mb: 1024.0 * (1 + (i % 4)) as f64,
                    whetstone_mips: 1500.0 + (i % 100) as f64 * 10.0,
                    dhrystone_mips: 3000.0 + (i % 100) as f64 * 20.0,
                    avail_disk_gb: 20.0 + (i % 50) as f64 * 4.0,
                    total_disk_gb: 500.0,
                });
            }
            trace.push(rec);
        }
        trace
    }

    #[test]
    fn perfect_model_has_small_error() {
        let trace = toy_trace();
        let date = SimDate::from_year(2010.0);
        let hosts: Vec<GeneratedHost> = trace
            .population_at(date)
            .iter()
            .map(GeneratedHost::from)
            .collect();
        let perfect = Replay {
            hosts: hosts.clone(),
            disk_scale: 1.0,
            label: "perfect",
        };
        let config = UtilityExperimentConfig {
            dates: vec![date],
            apps: AppProfile::ALL.to_vec(),
            seed: 3,
        };
        let out = run_utility_experiment(&trace, &[&perfect], &config).unwrap();
        for a in 0..4 {
            assert!(out[0].mean_of(a) < 10.0, "app {a}: {}", out[0].mean_of(a));
        }
    }

    #[test]
    fn disk_inflation_hurts_p2p_most() {
        let trace = toy_trace();
        let date = SimDate::from_year(2010.0);
        let hosts: Vec<GeneratedHost> = trace
            .population_at(date)
            .iter()
            .map(GeneratedHost::from)
            .collect();
        let inflated = Replay {
            hosts,
            disk_scale: 2.0,
            label: "inflated",
        };
        let config = UtilityExperimentConfig {
            dates: vec![date],
            apps: AppProfile::ALL.to_vec(),
            seed: 4,
        };
        let out = run_utility_experiment(&trace, &[&inflated], &config).unwrap();
        let p2p = out[0].mean_of(3);
        let seti = out[0].mean_of(0);
        // 2× disk → P2P utility inflated by ≈ 2^0.7 ≈ 62%, SETI by 2^0.05 ≈ 3.5%.
        assert!(p2p > 40.0, "p2p {p2p}");
        assert!(seti < 15.0, "seti {seti}");
        assert!(p2p > 3.0 * seti);
    }

    #[test]
    fn errors_on_empty_population() {
        let trace = Trace::new();
        let config = UtilityExperimentConfig::default();
        let gens: [&dyn HostGenerator; 0] = [];
        assert!(run_utility_experiment(&trace, &gens, &config).is_err());
    }

    #[test]
    fn series_statistics() {
        let s = ModelSeries {
            model: "x",
            diffs: vec![vec![
                UtilityDiff {
                    date: SimDate::from_year(2010.0),
                    model_utility: 110.0,
                    actual_utility: 100.0,
                    pct_diff: 10.0,
                },
                UtilityDiff {
                    date: SimDate::from_year(2010.1),
                    model_utility: 80.0,
                    actual_utility: 100.0,
                    pct_diff: 20.0,
                },
            ]],
        };
        assert_eq!(s.range_of(0), (10.0, 20.0));
        assert_eq!(s.mean_of(0), 15.0);
    }
}
