//! Greedy round-robin allocation of hosts to applications
//! (paper Section VII: "assigns resources to applications in a greedy
//! round-robin fashion").

use crate::profile::{utility, AppProfile};
use resmodel_core::GeneratedHost;
use serde::Serialize;

/// Result of one allocation round: which hosts each application got and
/// the total utility it extracts from them.
#[derive(Debug, Clone, Serialize)]
pub struct Allocation {
    /// Application names, in the round-robin order used.
    pub apps: Vec<&'static str>,
    /// `assigned[i]` — indices into the host slice owned by app `i`.
    pub assigned: Vec<Vec<usize>>,
    /// `total_utility[i]` — Σ utility of app `i` over its hosts.
    pub total_utility: Vec<f64>,
}

impl Allocation {
    /// Total utility of the application at `app_index`.
    ///
    /// # Panics
    ///
    /// Panics when `app_index` is out of range.
    pub fn utility_of(&self, app_index: usize) -> f64 {
        self.total_utility[app_index]
    }

    /// Number of hosts assigned overall.
    pub fn assigned_count(&self) -> usize {
        self.assigned.iter().map(|a| a.len()).sum()
    }
}

/// Greedy round-robin allocation: applications take turns; on its turn
/// each application claims the unassigned host with the highest utility
/// *for it*. Every host is assigned exactly once.
///
/// Implemented with one pre-sorted preference list per application, so
/// the whole allocation is `O(A·N log N)`.
pub fn allocate_round_robin(apps: &[AppProfile], hosts: &[GeneratedHost]) -> Allocation {
    let a = apps.len();
    // Per-app preference order (host indices, best utility first).
    let mut prefs: Vec<std::vec::IntoIter<usize>> = apps
        .iter()
        .map(|app| {
            let mut order: Vec<usize> = (0..hosts.len()).collect();
            let us: Vec<f64> = hosts.iter().map(|h| utility(app, h)).collect();
            order.sort_by(|&x, &y| {
                us[y]
                    .partial_cmp(&us[x])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            order.into_iter()
        })
        .collect();

    let mut taken = vec![false; hosts.len()];
    let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); a];
    let mut total_utility = vec![0.0; a];
    let mut remaining = hosts.len();
    while remaining > 0 {
        for (i, pref) in prefs.iter_mut().enumerate() {
            // Claim this app's best still-free host.
            let choice = pref.find(|&idx| !taken[idx]);
            if let Some(idx) = choice {
                taken[idx] = true;
                remaining -= 1;
                total_utility[i] += utility(&apps[i], &hosts[idx]);
                assigned[i].push(idx);
            }
            if remaining == 0 {
                break;
            }
        }
    }

    Allocation {
        apps: apps.iter().map(|p| p.name).collect(),
        assigned,
        total_utility,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn host(cores: u32, mem: f64, dhry: f64, whet: f64, disk: f64) -> GeneratedHost {
        GeneratedHost {
            cores,
            memory_mb: mem,
            whetstone_mips: whet,
            dhrystone_mips: dhry,
            avail_disk_gb: disk,
        }
    }

    #[test]
    fn every_host_assigned_once() {
        let hosts: Vec<GeneratedHost> = (0..103)
            .map(|i| {
                host(
                    1 + (i % 8) as u32,
                    1024.0 + i as f64,
                    2000.0,
                    1000.0,
                    10.0 + i as f64,
                )
            })
            .collect();
        let alloc = allocate_round_robin(&AppProfile::ALL, &hosts);
        assert_eq!(alloc.assigned_count(), hosts.len());
        let mut seen = vec![false; hosts.len()];
        for app_hosts in &alloc.assigned {
            for &i in app_hosts {
                assert!(!seen[i], "host {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn round_robin_is_fair_in_count() {
        let hosts: Vec<GeneratedHost> = (0..100)
            .map(|i| host(2, 2048.0, 3000.0, 1500.0, 50.0 + i as f64))
            .collect();
        let alloc = allocate_round_robin(&AppProfile::ALL, &hosts);
        for a in &alloc.assigned {
            assert_eq!(a.len(), 25);
        }
    }

    #[test]
    fn greedy_gives_specialists_their_preference() {
        // A disk monster that is weak on every other resource: only P2P
        // prefers it, so the greedy round-robin should route it there
        // even though P2P picks last.
        let hosts = vec![
            host(1, 64.0, 50.0, 25.0, 10_000.0),    // disk monster
            host(8, 8192.0, 20_000.0, 9000.0, 1.0), // CPU monster
            host(1, 512.0, 800.0, 400.0, 5.0),
            host(1, 512.0, 800.0, 400.0, 5.0),
            host(1, 512.0, 800.0, 400.0, 5.0),
        ];
        let alloc = allocate_round_robin(&AppProfile::ALL, &hosts);
        let p2p_idx = alloc.apps.iter().position(|&n| n == "P2P").unwrap();
        assert!(
            alloc.assigned[p2p_idx].contains(&0),
            "P2P should claim the disk monster: {:?}",
            alloc.assigned
        );
    }

    #[test]
    fn utility_totals_are_consistent() {
        let hosts: Vec<GeneratedHost> = (0..40)
            .map(|i| host(2, 2048.0, 3000.0, 1500.0, 20.0 + i as f64))
            .collect();
        let alloc = allocate_round_robin(&AppProfile::ALL, &hosts);
        for (i, app) in AppProfile::ALL.iter().enumerate() {
            let expect: f64 = alloc.assigned[i]
                .iter()
                .map(|&idx| utility(app, &hosts[idx]))
                .sum();
            assert!((alloc.utility_of(i) - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_hosts_allocation() {
        let alloc = allocate_round_robin(&AppProfile::ALL, &[]);
        assert_eq!(alloc.assigned_count(), 0);
        assert!(alloc.total_utility.iter().all(|&u| u == 0.0));
    }
}
