//! Application utility profiles (paper Table IX) and the Cobb–Douglas
//! utility function (Equation 1).

use resmodel_core::GeneratedHost;
use serde::Serialize;

/// Cobb–Douglas returns-to-scale exponents of one application class
/// over the five host resources (paper Table IX).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AppProfile {
    /// Application name.
    pub name: &'static str,
    /// Exponent α on core count.
    pub cores: f64,
    /// Exponent β on memory.
    pub memory: f64,
    /// Exponent γ on Dhrystone (integer) speed.
    pub dhrystone: f64,
    /// Exponent δ on Whetstone (floating-point) speed.
    pub whetstone: f64,
    /// Exponent ε on available disk.
    pub disk: f64,
}

impl AppProfile {
    /// Radio-signal analysis: fast floating point, little memory/disk,
    /// single-core.
    pub const SETI_AT_HOME: AppProfile = AppProfile {
        name: "SETI@home",
        cores: 0.05,
        memory: 0.1,
        dhrystone: 0.2,
        whetstone: 0.4,
        disk: 0.05,
    };

    /// Parallel molecular dynamics: multicore, medium memory,
    /// little disk.
    pub const FOLDING_AT_HOME: AppProfile = AppProfile {
        name: "Folding@home",
        cores: 0.4,
        memory: 0.05,
        dhrystone: 0.2,
        whetstone: 0.3,
        disk: 0.05,
    };

    /// Climate prediction: a mix of all resources, emphasis on floating
    /// point.
    pub const CLIMATE_PREDICTION: AppProfile = AppProfile {
        name: "Climate Prediction",
        cores: 0.2,
        memory: 0.2,
        dhrystone: 0.1,
        whetstone: 0.35,
        disk: 0.15,
    };

    /// Distributed file sharing: disk-dominated.
    pub const P2P: AppProfile = AppProfile {
        name: "P2P",
        cores: 0.05,
        memory: 0.1,
        dhrystone: 0.1,
        whetstone: 0.05,
        disk: 0.7,
    };

    /// The paper's four sample applications, in Table IX order.
    pub const ALL: [AppProfile; 4] = [
        AppProfile::SETI_AT_HOME,
        AppProfile::FOLDING_AT_HOME,
        AppProfile::CLIMATE_PREDICTION,
        AppProfile::P2P,
    ];
}

/// Cobb–Douglas utility of running `app` on `host` (Equation 1):
/// `Y = C^α · M^β · I^γ · F^δ · D^ε`.
///
/// Resources are used in their native units (cores, MB, MIPS, MIPS,
/// GB); values are floored at tiny positives so a zero-disk host yields
/// near-zero rather than NaN utility.
pub fn utility(app: &AppProfile, host: &GeneratedHost) -> f64 {
    let c = (host.cores as f64).max(1e-9);
    let m = host.memory_mb.max(1e-9);
    let i = host.dhrystone_mips.max(1e-9);
    let f = host.whetstone_mips.max(1e-9);
    let d = host.avail_disk_gb.max(1e-9);
    c.powf(app.cores)
        * m.powf(app.memory)
        * i.powf(app.dhrystone)
        * f.powf(app.whetstone)
        * d.powf(app.disk)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn host(cores: u32, mem: f64, dhry: f64, whet: f64, disk: f64) -> GeneratedHost {
        GeneratedHost {
            cores,
            memory_mb: mem,
            whetstone_mips: whet,
            dhrystone_mips: dhry,
            avail_disk_gb: disk,
        }
    }

    #[test]
    fn table_ix_constants() {
        assert_eq!(AppProfile::ALL.len(), 4);
        let seti = AppProfile::SETI_AT_HOME;
        assert_eq!(
            (
                seti.cores,
                seti.memory,
                seti.dhrystone,
                seti.whetstone,
                seti.disk
            ),
            (0.05, 0.1, 0.2, 0.4, 0.05)
        );
        let p2p = AppProfile::P2P;
        assert_eq!(p2p.disk, 0.7);
    }

    #[test]
    fn utility_monotone_in_each_resource() {
        let base = host(2, 2048.0, 3000.0, 1500.0, 80.0);
        for app in AppProfile::ALL {
            let u0 = utility(&app, &base);
            assert!(utility(&app, &host(4, 2048.0, 3000.0, 1500.0, 80.0)) > u0);
            assert!(utility(&app, &host(2, 4096.0, 3000.0, 1500.0, 80.0)) > u0);
            assert!(utility(&app, &host(2, 2048.0, 6000.0, 1500.0, 80.0)) > u0);
            assert!(utility(&app, &host(2, 2048.0, 3000.0, 3000.0, 80.0)) > u0);
            assert!(utility(&app, &host(2, 2048.0, 3000.0, 1500.0, 160.0)) > u0);
        }
    }

    #[test]
    fn exponents_weight_preferences() {
        let big_disk = host(1, 1024.0, 2000.0, 1000.0, 1000.0);
        let fast_cpu = host(1, 1024.0, 8000.0, 4000.0, 10.0);
        // P2P prefers the disk box, SETI prefers the fast box.
        assert!(utility(&AppProfile::P2P, &big_disk) > utility(&AppProfile::P2P, &fast_cpu));
        assert!(
            utility(&AppProfile::SETI_AT_HOME, &fast_cpu)
                > utility(&AppProfile::SETI_AT_HOME, &big_disk)
        );
    }

    #[test]
    fn doubling_disk_scales_p2p_by_2_to_eps() {
        let a = host(2, 2048.0, 3000.0, 1500.0, 50.0);
        let b = host(2, 2048.0, 3000.0, 1500.0, 100.0);
        let ratio = utility(&AppProfile::P2P, &b) / utility(&AppProfile::P2P, &a);
        assert!((ratio - 2f64.powf(0.7)).abs() < 1e-9);
    }

    #[test]
    fn degenerate_host_yields_finite_utility() {
        let zero = host(0, 0.0, 0.0, 0.0, 0.0);
        for app in AppProfile::ALL {
            let u = utility(&app, &zero);
            assert!(u.is_finite() && u >= 0.0);
        }
    }
}
