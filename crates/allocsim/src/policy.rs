//! Alternative allocation policies, for sensitivity analysis of the
//! Fig 15 experiment (the paper fixes greedy round-robin; these let a
//! user check that model rankings are not an artifact of that choice).

use crate::allocator::{allocate_round_robin, Allocation};
use crate::profile::{utility, AppProfile};
use rand::seq::SliceRandom;
use resmodel_core::GeneratedHost;
use resmodel_stats::rng::seeded;
use serde::Serialize;

/// An allocation policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Policy {
    /// The paper's greedy round-robin: apps take turns picking their
    /// best remaining host.
    GreedyRoundRobin,
    /// Hosts are shuffled (by the given seed) and dealt to apps in
    /// turn — the no-information baseline.
    RandomRoundRobin {
        /// Shuffle seed.
        seed: u64,
    },
    /// Every host goes to the application that values it most relative
    /// to that application's average valuation (normalisation prevents
    /// the large-magnitude P2P utilities from absorbing everything).
    /// No fairness constraint: counts per app may be very uneven.
    BestRelativeFit,
}

impl Policy {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Policy::GreedyRoundRobin => "greedy-rr",
            Policy::RandomRoundRobin { .. } => "random-rr",
            Policy::BestRelativeFit => "best-fit",
        }
    }
}

/// Allocate `hosts` to `apps` under `policy`.
pub fn allocate(policy: Policy, apps: &[AppProfile], hosts: &[GeneratedHost]) -> Allocation {
    match policy {
        Policy::GreedyRoundRobin => allocate_round_robin(apps, hosts),
        Policy::RandomRoundRobin { seed } => {
            let mut order: Vec<usize> = (0..hosts.len()).collect();
            let mut rng = seeded(seed);
            order.shuffle(&mut rng);
            let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); apps.len()];
            let mut total_utility = vec![0.0; apps.len()];
            for (k, &idx) in order.iter().enumerate() {
                let a = k % apps.len();
                assigned[a].push(idx);
                total_utility[a] += utility(&apps[a], &hosts[idx]);
            }
            Allocation {
                apps: apps.iter().map(|p| p.name).collect(),
                assigned,
                total_utility,
            }
        }
        Policy::BestRelativeFit => {
            // Per-app mean valuation as the normaliser.
            let means: Vec<f64> = apps
                .iter()
                .map(|app| {
                    let total: f64 = hosts.iter().map(|h| utility(app, h)).sum();
                    (total / hosts.len().max(1) as f64).max(f64::MIN_POSITIVE)
                })
                .collect();
            let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); apps.len()];
            let mut total_utility = vec![0.0; apps.len()];
            for (idx, h) in hosts.iter().enumerate() {
                let best = (0..apps.len())
                    .max_by(|&a, &b| {
                        let ra = utility(&apps[a], h) / means[a];
                        let rb = utility(&apps[b], h) / means[b];
                        ra.partial_cmp(&rb).expect("finite utilities")
                    })
                    .expect("at least one app");
                assigned[best].push(idx);
                total_utility[best] += utility(&apps[best], h);
            }
            Allocation {
                apps: apps.iter().map(|p| p.name).collect(),
                assigned,
                total_utility,
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use resmodel_core::{HostGenerator, HostModel};
    use resmodel_trace::SimDate;

    fn hosts(n: usize) -> Vec<GeneratedHost> {
        HostModel::paper().generate_population(SimDate::from_year(2010.0), n, 3)
    }

    #[test]
    fn all_policies_partition_hosts() {
        let hs = hosts(101);
        for policy in [
            Policy::GreedyRoundRobin,
            Policy::RandomRoundRobin { seed: 5 },
            Policy::BestRelativeFit,
        ] {
            let alloc = allocate(policy, &AppProfile::ALL, &hs);
            assert_eq!(alloc.assigned_count(), hs.len(), "{}", policy.label());
            let mut seen = vec![false; hs.len()];
            for app_hosts in &alloc.assigned {
                for &i in app_hosts {
                    assert!(!seen[i]);
                    seen[i] = true;
                }
            }
        }
    }

    #[test]
    fn greedy_dominates_random_per_app() {
        let hs = hosts(2000);
        let greedy = allocate(Policy::GreedyRoundRobin, &AppProfile::ALL, &hs);
        let random = allocate(Policy::RandomRoundRobin { seed: 7 }, &AppProfile::ALL, &hs);
        // Greedy must extract at least as much utility as random
        // dealing for every application (generous tolerance: the last
        // apps in the round-robin order pick from a depleted pool).
        for a in 0..AppProfile::ALL.len() {
            assert!(
                greedy.utility_of(a) > 0.95 * random.utility_of(a),
                "app {a}: greedy {} vs random {}",
                greedy.utility_of(a),
                random.utility_of(a)
            );
        }
        // And strictly more in total.
        let g: f64 = (0..4).map(|a| greedy.utility_of(a)).sum();
        let r: f64 = (0..4).map(|a| random.utility_of(a)).sum();
        assert!(g > r, "greedy total {g} vs random {r}");
    }

    #[test]
    fn best_fit_routes_disk_hosts_to_p2p() {
        let mut hs = hosts(400);
        // One extreme disk host.
        hs.push(GeneratedHost {
            cores: 1,
            memory_mb: 512.0,
            whetstone_mips: 500.0,
            dhrystone_mips: 1000.0,
            avail_disk_gb: 50_000.0,
        });
        let alloc = allocate(Policy::BestRelativeFit, &AppProfile::ALL, &hs);
        let p2p = alloc.apps.iter().position(|&n| n == "P2P").unwrap();
        assert!(
            alloc.assigned[p2p].contains(&(hs.len() - 1)),
            "best-fit should route the disk monster to P2P"
        );
    }

    #[test]
    fn random_policy_is_seed_deterministic() {
        let hs = hosts(100);
        let a = allocate(Policy::RandomRoundRobin { seed: 9 }, &AppProfile::ALL, &hs);
        let b = allocate(Policy::RandomRoundRobin { seed: 9 }, &AppProfile::ALL, &hs);
        assert_eq!(a.assigned, b.assigned);
        let c = allocate(Policy::RandomRoundRobin { seed: 10 }, &AppProfile::ALL, &hs);
        assert_ne!(a.assigned, c.assigned);
    }

    #[test]
    fn labels() {
        assert_eq!(Policy::GreedyRoundRobin.label(), "greedy-rr");
        assert_eq!(Policy::RandomRoundRobin { seed: 1 }.label(), "random-rr");
        assert_eq!(Policy::BestRelativeFit.label(), "best-fit");
    }
}
