//! Property-based tests of the availability extension: schedule
//! invariants and completion-time algebra under random class
//! parameters.

use proptest::prelude::*;
use resmodel_avail::model::ClassParams;
use resmodel_avail::schedule::completion_time;
use resmodel_avail::{AvailabilityModel, Schedule};
use resmodel_stats::rng::seeded;

fn params_strategy() -> impl Strategy<Value = ClassParams> {
    (0.3..3.0f64, 0.5..200.0f64, -1.0..3.5f64, 0.1..1.2f64).prop_map(
        |(on_shape, on_scale, off_mu, off_sigma)| ClassParams {
            weight: 1.0,
            on_shape,
            on_scale_hours: on_scale,
            off_mu,
            off_sigma,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedules_are_well_formed(p in params_strategy(), seed in 0u64..500) {
        let model = AvailabilityModel::new(vec![(resmodel_avail::HostClass::Daily, p)]).unwrap();
        let mut rng = seeded(seed);
        let horizon = 24.0 * 60.0;
        let s = model.schedule_for(&p, horizon, &mut rng);
        let mut prev_end = 0.0;
        for &(a, b) in s.intervals() {
            prop_assert!(a >= prev_end - 1e-9, "intervals must not overlap");
            prop_assert!(b >= a);
            prop_assert!(b <= horizon + 1e-9);
            prev_end = b;
        }
        let f = s.availability_fraction();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
        prop_assert!(s.longest_on_hours() <= s.total_on_hours() + 1e-9);
    }

    #[test]
    fn steady_state_availability_in_unit_interval(p in params_strategy()) {
        let a = p.steady_state_availability();
        prop_assert!(a > 0.0 && a < 1.0, "availability {a}");
    }

    #[test]
    fn completion_monotone_in_work(
        p in params_strategy(),
        seed in 0u64..200,
        w1 in 0.1..50.0f64,
        extra in 0.0..50.0f64,
    ) {
        let model = AvailabilityModel::new(vec![(resmodel_avail::HostClass::Daily, p)]).unwrap();
        let mut rng = seeded(seed);
        let s = model.schedule_for(&p, 24.0 * 90.0, &mut rng);
        let w2 = w1 + extra;
        for check in [true, false] {
            match (completion_time(&s, w1, check), completion_time(&s, w2, check)) {
                (Some(t1), Some(t2)) => prop_assert!(t2 >= t1 - 1e-9,
                    "more work cannot finish earlier ({t1} vs {t2})"),
                (None, Some(_)) => prop_assert!(false, "more work finished when less did not"),
                _ => {}
            }
        }
    }

    #[test]
    fn checkpointing_dominates(p in params_strategy(), seed in 0u64..200, w in 0.1..40.0f64) {
        let model = AvailabilityModel::new(vec![(resmodel_avail::HostClass::Daily, p)]).unwrap();
        let mut rng = seeded(seed);
        let s = model.schedule_for(&p, 24.0 * 90.0, &mut rng);
        match (completion_time(&s, w, true), completion_time(&s, w, false)) {
            (Some(c), Some(n)) => prop_assert!(c <= n + 1e-9),
            (None, Some(_)) => prop_assert!(false, "checkpointing must dominate"),
            _ => {}
        }
    }

    #[test]
    fn completion_bounded_by_on_time(seed in 0u64..200, w in 0.1..100.0f64) {
        let model = AvailabilityModel::default_volunteer_mix();
        let mut rng = seeded(seed);
        let (_, s) = model.sample_schedule(24.0 * 60.0, &mut rng);
        match completion_time(&s, w, true) {
            Some(t) => {
                prop_assert!(t <= s.horizon_hours() + 1e-9);
                prop_assert!(s.total_on_hours() >= w - 1e-9);
            }
            None => prop_assert!(s.total_on_hours() < w + 1e-9),
        }
    }

    #[test]
    fn schedule_validation_catches_bad_input(a in 0.0..50.0f64, len in 0.0..50.0f64) {
        // Inverted interval must be rejected.
        prop_assert!(Schedule::new(vec![(a + len + 1.0, a)], 200.0).is_err());
        // Valid single interval accepted.
        prop_assert!(Schedule::new(vec![(a, a + len)], 200.0).is_ok());
    }
}
