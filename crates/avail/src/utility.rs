//! Availability-aware utility: tying the availability extension back
//! to the paper's Section VII simulation.

use crate::schedule::Schedule;
use resmodel_allocsim::{utility, AppProfile};
use resmodel_core::GeneratedHost;

/// Availability-discounted Cobb–Douglas utility.
///
/// A throughput-oriented application only benefits from a host while it
/// is ON, so its effective utility is the raw utility scaled by the
/// host's availability fraction. Applications that cannot checkpoint
/// additionally need sessions long enough for their work unit; pass
/// `min_session_hours` to zero out hosts whose longest session is too
/// short.
pub fn effective_utility(
    app: &AppProfile,
    host: &GeneratedHost,
    schedule: &Schedule,
    min_session_hours: Option<f64>,
) -> f64 {
    if let Some(min) = min_session_hours {
        if schedule.longest_on_hours() < min {
            return 0.0;
        }
    }
    utility(app, host) * schedule.availability_fraction()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::model::AvailabilityModel;
    use resmodel_stats::rng::seeded;

    fn host() -> GeneratedHost {
        GeneratedHost {
            cores: 2,
            memory_mb: 2048.0,
            whetstone_mips: 1500.0,
            dhrystone_mips: 3000.0,
            avail_disk_gb: 80.0,
        }
    }

    #[test]
    fn discounts_by_availability() {
        let s = Schedule::new(vec![(0.0, 50.0)], 100.0).unwrap();
        let raw = utility(&AppProfile::SETI_AT_HOME, &host());
        let eff = effective_utility(&AppProfile::SETI_AT_HOME, &host(), &s, None);
        assert!((eff - raw * 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_session_gates_utility() {
        let s = Schedule::new(vec![(0.0, 3.0), (10.0, 14.0)], 100.0).unwrap();
        let eff_ok = effective_utility(&AppProfile::P2P, &host(), &s, Some(4.0));
        assert!(eff_ok > 0.0); // longest session is 4 h
        let eff_no = effective_utility(&AppProfile::P2P, &host(), &s, Some(4.1));
        assert_eq!(eff_no, 0.0);
    }

    #[test]
    fn always_on_hosts_keep_full_utility() {
        let m = AvailabilityModel::default_volunteer_mix();
        let p = *m.class(crate::HostClass::AlwaysOn).unwrap();
        let mut rng = seeded(3);
        let s = m.schedule_for(&p, 24.0 * 30.0, &mut rng);
        let raw = utility(&AppProfile::CLIMATE_PREDICTION, &host());
        let eff = effective_utility(&AppProfile::CLIMATE_PREDICTION, &host(), &s, None);
        assert!(
            eff > 0.85 * raw,
            "always-on host lost too much: {eff} vs {raw}"
        );
    }
}
