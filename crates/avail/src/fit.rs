//! Fitting availability-interval distributions from measured data,
//! using the paper's KS methodology (Section V-F) on ON/OFF durations.

use rand::Rng;
use resmodel_stats::ks::{select_family, FamilyScore, SubsampleConfig};
use resmodel_stats::{DistributionFamily, StatsError};

/// Rank the seven candidate families for a set of measured interval
/// durations (hours), exactly as the paper ranks benchmark and disk
/// distributions.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] for empty input.
pub fn fit_interval_family(
    durations_hours: &[f64],
    config: SubsampleConfig,
    rng: &mut dyn Rng,
) -> Result<Vec<FamilyScore>, StatsError> {
    select_family(durations_hours, &DistributionFamily::ALL, config, rng)
}

/// Extract ON durations (hours) from a schedule.
pub fn on_durations(schedule: &crate::Schedule) -> Vec<f64> {
    schedule.intervals().iter().map(|(a, b)| b - a).collect()
}

/// Extract OFF durations (hours) from a schedule (gaps between ON
/// intervals; leading/trailing gaps are excluded since they are
/// censored by the horizon).
pub fn off_durations(schedule: &crate::Schedule) -> Vec<f64> {
    schedule
        .intervals()
        .windows(2)
        .map(|w| w[1].0 - w[0].1)
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::model::{AvailabilityModel, HostClass};
    use resmodel_stats::rng::seeded;

    #[test]
    fn durations_extraction() {
        let s = crate::Schedule::new(vec![(0.0, 10.0), (20.0, 25.0), (40.0, 41.0)], 100.0).unwrap();
        assert_eq!(on_durations(&s), vec![10.0, 5.0, 1.0]);
        assert_eq!(off_durations(&s), vec![10.0, 15.0]);
    }

    #[test]
    fn weibull_recovered_for_on_durations() {
        // Pool many Daily-class schedules and let the KS selection find
        // the generating family of the ON durations.
        let m = AvailabilityModel::default_volunteer_mix();
        let p = *m.class(HostClass::Daily).unwrap();
        let mut rng = seeded(12);
        let mut ons = Vec::new();
        while ons.len() < 3000 {
            let s = m.schedule_for(&p, 24.0 * 200.0, &mut rng);
            // Drop the final (horizon-censored) interval.
            let durs = on_durations(&s);
            ons.extend(durs.iter().take(durs.len().saturating_sub(1)));
        }
        let ranked = fit_interval_family(&ons, SubsampleConfig::default(), &mut rng).unwrap();
        // Weibull with shape 1.6 — gamma is a close cousin, accept both
        // at the top, but weibull must rank in the top two.
        let top2: Vec<_> = ranked.iter().take(2).map(|s| s.family).collect();
        assert!(
            top2.contains(&DistributionFamily::Weibull),
            "expected weibull in top two, got {top2:?}"
        );
    }

    #[test]
    fn lognormal_recovered_for_off_durations() {
        let m = AvailabilityModel::default_volunteer_mix();
        let p = *m.class(HostClass::Daily).unwrap();
        let mut rng = seeded(13);
        let mut offs = Vec::new();
        while offs.len() < 3000 {
            let s = m.schedule_for(&p, 24.0 * 200.0, &mut rng);
            offs.extend(off_durations(&s));
        }
        let ranked = fit_interval_family(&offs, SubsampleConfig::default(), &mut rng).unwrap();
        assert_eq!(ranked[0].family, DistributionFamily::LogNormal);
    }

    #[test]
    fn empty_data_errors() {
        let mut rng = seeded(1);
        assert!(fit_interval_family(&[], SubsampleConfig::default(), &mut rng).is_err());
    }
}
