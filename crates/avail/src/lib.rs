//! # resmodel-avail
//!
//! Host **availability** extension to the resource model — the first
//! item of future work the paper proposes ("the model of resources
//! could be tied to models of network topology and traffic, or models
//! of host availability"), built on the empirical findings of the
//! paper's companion studies (Javadi, Kondo, Vincent & Anderson,
//! MASCOTS'09; Nurmi, Brevik & Wolski).
//!
//! A volunteer host is not continuously usable: the client runs in
//! ON/OFF sessions. This crate models per-host availability as an
//! **alternating renewal process** — Weibull ON durations (heavy-tailed
//! with decreasing hazard, like host lifetimes) and log-normal OFF
//! durations — drawn from a small mixture of behaviour classes
//! (always-on boxes, daily-use desktops, sporadic laptops). It
//! provides:
//!
//! * [`AvailabilityModel`] — class mixture + per-class interval laws;
//! * [`Schedule`] — a sampled ON/OFF timeline with queries
//!   (availability fraction, longest ON interval, point availability);
//! * [`completion_time`] — how long a workload takes when progress is
//!   only made while ON, with or without checkpointing (the classic
//!   volunteer-computing analysis);
//! * [`fit`](fit::fit_interval_family) — KS-based family selection on
//!   measured interval data, reusing the paper's methodology;
//! * [`effective_utility`] — availability-discounted Cobb–Douglas
//!   utility, linking this extension back to the Section VII
//!   simulation.
//!
//! ```
//! use resmodel_avail::{AvailabilityModel, HostClass};
//!
//! let model = AvailabilityModel::default_volunteer_mix();
//! let mut rng = resmodel_stats::rng::seeded(9);
//! let (class, schedule) = model.sample_schedule(24.0 * 30.0, &mut rng); // 30 days
//! assert!(schedule.availability_fraction() > 0.0);
//! assert!(schedule.availability_fraction() <= 1.0);
//! let _ = matches!(class, HostClass::AlwaysOn | HostClass::Daily | HostClass::Sporadic);
//! ```

#![warn(clippy::unwrap_used)]

pub mod fit;
pub mod model;
pub mod schedule;
pub mod utility;

pub use model::{AvailabilityModel, ClassParams, HostClass};
pub use schedule::{completion_time, Schedule};
pub use utility::effective_utility;
