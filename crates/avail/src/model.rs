//! The availability model: a mixture of host behaviour classes, each an
//! alternating renewal process with Weibull ON and log-normal OFF
//! interval durations.

use crate::schedule::Schedule;
use rand::{Rng, RngExt};
use resmodel_error::ResmodelError;
use resmodel_stats::distributions::{LogNormal, Weibull};
use resmodel_stats::Distribution;
use serde::{Deserialize, Serialize};

/// Host availability behaviour class (the MASCOTS'09 companion study
/// found volunteer hosts cluster into a handful of such regimes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostClass {
    /// Machines that are almost always on (office/server boxes).
    AlwaysOn,
    /// Daily-use desktops: multi-hour sessions with overnight gaps.
    Daily,
    /// Sporadically used machines: short, infrequent sessions.
    Sporadic,
}

impl HostClass {
    /// All classes.
    pub const ALL: [HostClass; 3] = [HostClass::AlwaysOn, HostClass::Daily, HostClass::Sporadic];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            HostClass::AlwaysOn => "always-on",
            HostClass::Daily => "daily",
            HostClass::Sporadic => "sporadic",
        }
    }
}

impl std::fmt::Display for HostClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Interval laws of one behaviour class.
///
/// ON durations are Weibull (decreasing hazard: the longer a session
/// has run, the longer it is likely to continue — same phenomenon the
/// paper found for whole-host lifetimes); OFF durations are log-normal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassParams {
    /// Mixture weight (relative).
    pub weight: f64,
    /// Weibull shape of ON durations.
    pub on_shape: f64,
    /// Weibull scale of ON durations, hours.
    pub on_scale_hours: f64,
    /// Log-normal μ of OFF durations (of ln hours).
    pub off_mu: f64,
    /// Log-normal σ of OFF durations.
    pub off_sigma: f64,
}

impl ClassParams {
    /// Expected ON duration, hours.
    pub fn mean_on_hours(&self) -> f64 {
        Weibull::new(self.on_shape, self.on_scale_hours)
            .expect("validated parameters")
            .mean()
    }

    /// Expected OFF duration, hours.
    pub fn mean_off_hours(&self) -> f64 {
        LogNormal::new(self.off_mu, self.off_sigma)
            .expect("validated parameters")
            .mean()
    }

    /// Long-run availability of this class (renewal-reward theorem:
    /// `E[on] / (E[on] + E[off])`).
    pub fn steady_state_availability(&self) -> f64 {
        let on = self.mean_on_hours();
        let off = self.mean_off_hours();
        on / (on + off)
    }
}

/// A mixture-of-classes availability model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityModel {
    classes: Vec<(HostClass, ClassParams)>,
}

impl AvailabilityModel {
    /// Build from explicit class parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ResmodelError::Config`] when the list is empty, a
    /// weight is non-positive, or any interval parameter is invalid.
    pub fn new(classes: Vec<(HostClass, ClassParams)>) -> Result<Self, ResmodelError> {
        const CONTEXT: &str = "availability model";
        if classes.is_empty() {
            return Err(ResmodelError::config(
                CONTEXT,
                "needs at least one behaviour class",
            ));
        }
        for (c, p) in &classes {
            if !(p.weight > 0.0) {
                return Err(ResmodelError::config(
                    CONTEXT,
                    format!("class {c}: weight must be > 0"),
                ));
            }
            Weibull::new(p.on_shape, p.on_scale_hours).map_err(|e| {
                ResmodelError::config(CONTEXT, format!("class {c}: bad ON law: {e}"))
            })?;
            LogNormal::new(p.off_mu, p.off_sigma).map_err(|e| {
                ResmodelError::config(CONTEXT, format!("class {c}: bad OFF law: {e}"))
            })?;
        }
        Ok(Self { classes })
    }

    /// The default volunteer-pool mixture, calibrated to the companion
    /// availability study's headline statistics: roughly a quarter of
    /// hosts effectively always on, half daily-use desktops with ~40%
    /// availability, and a quarter sporadic laptops below 20%; pool
    /// average availability ≈ 0.5.
    pub fn default_volunteer_mix() -> Self {
        Self::new(vec![
            (
                HostClass::AlwaysOn,
                ClassParams {
                    weight: 0.25,
                    on_shape: 0.9,
                    on_scale_hours: 500.0,
                    off_mu: 0.3, // ~1.6 h reboots
                    off_sigma: 0.8,
                },
            ),
            (
                HostClass::Daily,
                ClassParams {
                    weight: 0.50,
                    on_shape: 1.6,
                    on_scale_hours: 9.0, // ~8 h sessions
                    off_mu: 2.6,         // ~15 h overnight
                    off_sigma: 0.35,
                },
            ),
            (
                HostClass::Sporadic,
                ClassParams {
                    weight: 0.25,
                    on_shape: 0.7,
                    on_scale_hours: 2.0,
                    off_mu: 2.9, // ~20+ h gaps
                    off_sigma: 0.9,
                },
            ),
        ])
        .expect("default mixture is valid")
    }

    /// The class parameter table.
    pub fn classes(&self) -> &[(HostClass, ClassParams)] {
        &self.classes
    }

    /// Parameters of one class, if present.
    pub fn class(&self, class: HostClass) -> Option<&ClassParams> {
        self.classes
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, p)| p)
    }

    /// Pool-level steady-state availability (weight-averaged).
    pub fn pool_availability(&self) -> f64 {
        let total: f64 = self.classes.iter().map(|(_, p)| p.weight).sum();
        self.classes
            .iter()
            .map(|(_, p)| p.weight * p.steady_state_availability())
            .sum::<f64>()
            / total
    }

    /// Sample a behaviour class.
    pub fn sample_class(&self, rng: &mut dyn Rng) -> HostClass {
        let total: f64 = self.classes.iter().map(|(_, p)| p.weight).sum();
        let mut u = rng.random::<f64>() * total;
        for (c, p) in &self.classes {
            if u < p.weight {
                return *c;
            }
            u -= p.weight;
        }
        self.classes.last().expect("non-empty").0
    }

    /// Sample a host's class and its ON/OFF schedule over
    /// `horizon_hours`.
    pub fn sample_schedule(&self, horizon_hours: f64, rng: &mut dyn Rng) -> (HostClass, Schedule) {
        let class = self.sample_class(rng);
        let p = self.class(class).expect("sampled class exists");
        (class, self.schedule_for(p, horizon_hours, rng))
    }

    /// Sample a schedule from explicit class parameters.
    pub fn schedule_for(&self, p: &ClassParams, horizon_hours: f64, rng: &mut dyn Rng) -> Schedule {
        let on = Weibull::new(p.on_shape, p.on_scale_hours).expect("validated");
        let off = LogNormal::new(p.off_mu, p.off_sigma).expect("validated");
        let mut intervals = Vec::new();
        // Random phase: start OFF with probability 1 − availability.
        let mut t = if rng.random::<f64>() < p.steady_state_availability() {
            0.0
        } else {
            off.sample(rng).min(horizon_hours)
        };
        while t < horizon_hours {
            let dur = on.sample(rng).max(1e-3);
            let end = (t + dur).min(horizon_hours);
            intervals.push((t, end));
            t = end + off.sample(rng).max(1e-3);
        }
        Schedule::new(intervals, horizon_hours).expect("constructed intervals are valid")
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use resmodel_stats::rng::seeded;

    #[test]
    fn default_mix_is_valid() {
        let m = AvailabilityModel::default_volunteer_mix();
        assert_eq!(m.classes().len(), 3);
        let pool = m.pool_availability();
        assert!(pool > 0.35 && pool < 0.65, "pool availability {pool}");
    }

    #[test]
    fn class_availability_ordering() {
        let m = AvailabilityModel::default_volunteer_mix();
        let a = m
            .class(HostClass::AlwaysOn)
            .unwrap()
            .steady_state_availability();
        let d = m
            .class(HostClass::Daily)
            .unwrap()
            .steady_state_availability();
        let s = m
            .class(HostClass::Sporadic)
            .unwrap()
            .steady_state_availability();
        assert!(a > 0.9, "always-on {a}");
        assert!(d > 0.25 && d < 0.6, "daily {d}");
        assert!(s < 0.2, "sporadic {s}");
        assert!(a > d && d > s);
    }

    #[test]
    fn validation_rejects_bad_params() {
        assert!(AvailabilityModel::new(vec![]).is_err());
        let bad_weight = ClassParams {
            weight: 0.0,
            on_shape: 1.0,
            on_scale_hours: 1.0,
            off_mu: 0.0,
            off_sigma: 1.0,
        };
        assert!(AvailabilityModel::new(vec![(HostClass::Daily, bad_weight)]).is_err());
        let bad_shape = ClassParams {
            weight: 1.0,
            on_shape: -1.0,
            on_scale_hours: 1.0,
            off_mu: 0.0,
            off_sigma: 1.0,
        };
        assert!(AvailabilityModel::new(vec![(HostClass::Daily, bad_shape)]).is_err());
    }

    #[test]
    fn sampled_schedules_match_steady_state() {
        let m = AvailabilityModel::default_volunteer_mix();
        let p = *m.class(HostClass::Daily).unwrap();
        let mut rng = seeded(4);
        let horizon = 24.0 * 365.0;
        let mut fracs = Vec::new();
        for _ in 0..200 {
            let s = m.schedule_for(&p, horizon, &mut rng);
            fracs.push(s.availability_fraction());
        }
        let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
        let expect = p.steady_state_availability();
        assert!(
            (mean - expect).abs() < 0.05,
            "mean {mean} vs steady {expect}"
        );
    }

    #[test]
    fn class_mixture_sampling_respects_weights() {
        let m = AvailabilityModel::default_volunteer_mix();
        let mut rng = seeded(5);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..4000 {
            *counts.entry(m.sample_class(&mut rng)).or_insert(0usize) += 1;
        }
        let frac = |c: HostClass| counts[&c] as f64 / 4000.0;
        assert!((frac(HostClass::AlwaysOn) - 0.25).abs() < 0.04);
        assert!((frac(HostClass::Daily) - 0.50).abs() < 0.04);
        assert!((frac(HostClass::Sporadic) - 0.25).abs() < 0.04);
    }

    #[test]
    fn schedule_horizon_respected() {
        let m = AvailabilityModel::default_volunteer_mix();
        let mut rng = seeded(6);
        for _ in 0..50 {
            let (_, s) = m.sample_schedule(100.0, &mut rng);
            for &(a, b) in s.intervals() {
                assert!(a >= 0.0 && b <= 100.0 && a <= b);
            }
        }
    }

    #[test]
    fn class_names_unique() {
        let names: std::collections::HashSet<_> = HostClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 3);
        assert_eq!(HostClass::Daily.to_string(), "daily");
    }
}
