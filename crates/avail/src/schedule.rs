//! ON/OFF schedules and workload-completion analysis.

use resmodel_error::ResmodelError;
use serde::{Deserialize, Serialize};

/// A host's ON intervals over a finite horizon (hours), sorted and
/// non-overlapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    intervals: Vec<(f64, f64)>,
    horizon_hours: f64,
}

impl Schedule {
    /// Build a schedule from ON intervals.
    ///
    /// # Errors
    ///
    /// Returns a [`ResmodelError::Config`] when intervals are out of
    /// order, overlapping, inverted, or outside `[0, horizon]`.
    pub fn new(intervals: Vec<(f64, f64)>, horizon_hours: f64) -> Result<Self, ResmodelError> {
        const CONTEXT: &str = "availability schedule";
        let bad = |message: String| Err(ResmodelError::config(CONTEXT, message));
        if !(horizon_hours > 0.0) {
            return bad("horizon must be positive".into());
        }
        let mut prev_end = 0.0;
        for &(a, b) in &intervals {
            if a < prev_end - 1e-12 {
                return bad(format!("interval ({a}, {b}) overlaps or is out of order"));
            }
            if b < a {
                return bad(format!("interval ({a}, {b}) is inverted"));
            }
            if a < 0.0 || b > horizon_hours + 1e-9 {
                return bad(format!("interval ({a}, {b}) outside [0, {horizon_hours}]"));
            }
            prev_end = b;
        }
        Ok(Self {
            intervals,
            horizon_hours,
        })
    }

    /// The ON intervals.
    pub fn intervals(&self) -> &[(f64, f64)] {
        &self.intervals
    }

    /// The horizon, hours.
    pub fn horizon_hours(&self) -> f64 {
        self.horizon_hours
    }

    /// Total ON time, hours.
    pub fn total_on_hours(&self) -> f64 {
        self.intervals.iter().map(|(a, b)| b - a).sum()
    }

    /// Fraction of the horizon the host is available.
    pub fn availability_fraction(&self) -> f64 {
        self.total_on_hours() / self.horizon_hours
    }

    /// Length of the longest uninterrupted ON interval, hours.
    pub fn longest_on_hours(&self) -> f64 {
        self.intervals
            .iter()
            .map(|(a, b)| b - a)
            .fold(0.0, f64::max)
    }

    /// Whether the host is ON at time `t` (hours).
    pub fn available_at(&self, t: f64) -> bool {
        self.intervals.iter().any(|&(a, b)| a <= t && t < b)
    }

    /// The ON intervals intersected with the window `[t0, t1)`, clipped
    /// to it, in order. Zero-length clips are skipped: an interval
    /// ending exactly at `t0` or starting exactly at `t1` does not
    /// appear. This is the dispatcher's hot path, so intervals wholly
    /// before the window are skipped by binary search rather than
    /// scanned.
    pub fn on_intervals_between(&self, t0: f64, t1: f64) -> impl Iterator<Item = (f64, f64)> + '_ {
        // First interval that ends strictly after t0; everything before
        // it clips to nothing.
        let start = self.intervals.partition_point(|&(_, b)| b <= t0);
        self.intervals[start..]
            .iter()
            .take_while(move |&&(a, _)| a < t1)
            .filter_map(move |&(a, b)| {
                let lo = a.max(t0);
                let hi = b.min(t1);
                (lo < hi).then_some((lo, hi))
            })
    }

    /// Total ON time within `[t0, t1)`, hours.
    pub fn on_hours_between(&self, t0: f64, t1: f64) -> f64 {
        self.on_intervals_between(t0, t1).map(|(a, b)| b - a).sum()
    }

    /// Number of ON sessions.
    pub fn session_count(&self) -> usize {
        self.intervals.len()
    }
}

/// Wall-clock time (hours) to finish `work_hours` of computation on a
/// host with this schedule, starting at time 0.
///
/// * With `checkpointing`, progress accumulates across sessions; the
///   task finishes once total ON time reaches `work_hours`.
/// * Without it, the task must fit inside a single ON interval — any
///   interruption restarts it from scratch (classic volunteer-computing
///   failure model).
///
/// Returns `None` when the work cannot complete within the horizon.
pub fn completion_time(schedule: &Schedule, work_hours: f64, checkpointing: bool) -> Option<f64> {
    assert!(work_hours >= 0.0, "work must be non-negative");
    if work_hours == 0.0 {
        return Some(0.0);
    }
    if checkpointing {
        let mut done = 0.0;
        for &(a, b) in schedule.intervals() {
            let len = b - a;
            if done + len >= work_hours {
                return Some(a + (work_hours - done));
            }
            done += len;
        }
        None
    } else {
        schedule
            .intervals()
            .iter()
            .find(|&&(a, b)| b - a >= work_hours)
            .map(|&(a, _)| a + work_hours)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sched(intervals: &[(f64, f64)]) -> Schedule {
        Schedule::new(intervals.to_vec(), 100.0).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Schedule::new(vec![(0.0, 10.0)], 0.0).is_err());
        assert!(Schedule::new(vec![(5.0, 3.0)], 100.0).is_err());
        assert!(Schedule::new(vec![(0.0, 10.0), (5.0, 20.0)], 100.0).is_err());
        assert!(Schedule::new(vec![(0.0, 200.0)], 100.0).is_err());
        assert!(Schedule::new(vec![], 100.0).is_ok());
    }

    #[test]
    fn basic_statistics() {
        let s = sched(&[(0.0, 10.0), (20.0, 25.0), (50.0, 80.0)]);
        assert_eq!(s.total_on_hours(), 45.0);
        assert_eq!(s.availability_fraction(), 0.45);
        assert_eq!(s.longest_on_hours(), 30.0);
        assert_eq!(s.session_count(), 3);
    }

    #[test]
    fn point_availability() {
        let s = sched(&[(10.0, 20.0)]);
        assert!(!s.available_at(5.0));
        assert!(s.available_at(10.0));
        assert!(s.available_at(19.999));
        assert!(!s.available_at(20.0));
    }

    #[test]
    fn window_clipping_basics() {
        let s = sched(&[(0.0, 10.0), (20.0, 25.0), (50.0, 80.0)]);
        // Whole horizon reproduces the intervals unchanged.
        let all: Vec<_> = s.on_intervals_between(0.0, 100.0).collect();
        assert_eq!(all, s.intervals().to_vec());
        // A window inside one interval clips both ends.
        let clipped: Vec<_> = s.on_intervals_between(55.0, 60.0).collect();
        assert_eq!(clipped, vec![(55.0, 60.0)]);
        // A window spanning a gap keeps both fragments.
        let spanning: Vec<_> = s.on_intervals_between(5.0, 22.0).collect();
        assert_eq!(spanning, vec![(5.0, 10.0), (20.0, 22.0)]);
        assert_eq!(s.on_hours_between(5.0, 22.0), 7.0);
        // An entirely-OFF window yields nothing.
        assert_eq!(s.on_intervals_between(11.0, 19.0).count(), 0);
        assert_eq!(s.on_hours_between(11.0, 19.0), 0.0);
    }

    #[test]
    fn window_boundaries_at_interval_endpoints() {
        let s = sched(&[(10.0, 20.0), (30.0, 40.0)]);
        // Window starting exactly at an interval end excludes it...
        let v: Vec<_> = s.on_intervals_between(20.0, 35.0).collect();
        assert_eq!(v, vec![(30.0, 35.0)]);
        // ...and a window ending exactly at an interval start excludes
        // that interval (half-open [t0, t1) semantics, matching
        // `available_at`'s `a <= t < b`).
        let v: Vec<_> = s.on_intervals_between(5.0, 30.0).collect();
        assert_eq!(v, vec![(10.0, 20.0)]);
        // Window edges exactly on interval edges reproduce the interval.
        let v: Vec<_> = s.on_intervals_between(10.0, 20.0).collect();
        assert_eq!(v, vec![(10.0, 20.0)]);
        // A degenerate (empty) window yields nothing, even at an edge.
        assert_eq!(s.on_intervals_between(10.0, 10.0).count(), 0);
        // Total ON mass over the horizon matches the direct sum.
        assert_eq!(s.on_hours_between(0.0, 100.0), s.total_on_hours());
    }

    #[test]
    fn completion_with_checkpointing_spans_sessions() {
        let s = sched(&[(0.0, 10.0), (20.0, 25.0), (50.0, 80.0)]);
        // 12h of work: 10h in session 1, 2h into session 2 → t = 22.
        assert_eq!(completion_time(&s, 12.0, true), Some(22.0));
        // 45h of work uses every ON hour: finishes exactly at 80.
        assert_eq!(completion_time(&s, 45.0, true), Some(80.0));
        // More than the total ON time cannot finish.
        assert_eq!(completion_time(&s, 45.1, true), None);
    }

    #[test]
    fn completion_without_checkpointing_needs_one_session() {
        let s = sched(&[(0.0, 10.0), (20.0, 25.0), (50.0, 80.0)]);
        // 12h of work does not fit in the first (10h) session; it fits
        // the 30h session starting at 50.
        assert_eq!(completion_time(&s, 12.0, false), Some(62.0));
        assert_eq!(completion_time(&s, 31.0, false), None);
        // 8h fits immediately.
        assert_eq!(completion_time(&s, 8.0, false), Some(8.0));
    }

    #[test]
    fn checkpointing_never_slower() {
        let s = sched(&[(0.0, 4.0), (10.0, 15.0), (30.0, 60.0)]);
        for &w in &[1.0, 4.5, 10.0, 20.0] {
            match (completion_time(&s, w, true), completion_time(&s, w, false)) {
                (Some(c), Some(n)) => assert!(c <= n, "work {w}: checkpoint {c} > none {n}"),
                (Some(_), None) => {}
                (None, Some(_)) => panic!("checkpointing must dominate"),
                (None, None) => {}
            }
        }
    }

    #[test]
    fn zero_work_is_instant() {
        let s = sched(&[]);
        assert_eq!(completion_time(&s, 0.0, true), Some(0.0));
        assert_eq!(completion_time(&s, 1.0, true), None);
    }
}
