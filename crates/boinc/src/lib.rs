//! # resmodel-boinc
//!
//! A synthetic volunteer-computing world and BOINC-style measurement
//! loop. This crate plays the role of the SETI@home infrastructure in
//! *"Correlated Resource Models of Internet End Hosts"* (Heien, Kondo &
//! Anderson, ICDCS 2011): it simulates a population of Internet end
//! hosts arriving, computing, contacting a project server and leaving,
//! while the server records hardware measurements into a
//! [`resmodel_trace::Trace`].
//!
//! The ground-truth population laws are seeded from every number the
//! paper publishes (Tables I–X, Figs 1–10) and then roughed up with the
//! artifacts real measurements carry:
//!
//! * per-RPC benchmark noise and a multicore shared-memory contention
//!   penalty (Section V-A),
//! * a mid-distribution "spike" in benchmark histograms (the paper
//!   notes the normal fit is imperfect for exactly this reason),
//! * intermediate per-core-memory values (1280 MB, 1792 MB, …) that the
//!   paper's model deliberately discards,
//! * non-power-of-two core counts (≈0.3% of hosts),
//! * corrupt reports (≈0.12% of hosts, the paper's discard fraction),
//! * available-disk drift and occasional memory upgrades over a host's
//!   life,
//! * host lifetimes that shorten with creation date (Fig 3) and with
//!   hardware quality,
//! * OS/CPU market composition from Tables I/II and GPUs (recorded only
//!   after September 2009) from Table VII/Fig 10.
//!
//! ## Example
//!
//! ```
//! use resmodel_boinc::{simulate, WorldParams};
//!
//! let params = WorldParams::with_scale(0.0005, 42); // tiny world
//! let trace = simulate(&params);
//! assert!(trace.len() > 100);
//! let t = resmodel_trace::SimDate::from_year(2008.0);
//! assert!(trace.active_count(t) > 10);
//! ```

#![warn(clippy::unwrap_used)]

pub mod bench_exec;
pub mod hardware;
pub mod params;
pub mod sim;

pub use params::WorldParams;
pub use sim::simulate;
