//! Synthetic Dhrystone/Whetstone execution.
//!
//! BOINC runs the benchmarks "on all available cores simultaneously and
//! the average speed is taken. Therefore, shared resources on multicore
//! machines may adversely affect processor performance results"
//! (Section V-A). This module models exactly that: a contention penalty
//! growing with log₂(cores) plus multiplicative measurement noise.

use crate::hardware::Hardware;
use crate::params::WorldParams;
use rand::Rng;
use resmodel_stats::sampling::standard_normal;

/// Measured benchmark speeds of one RPC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkResult {
    /// Measured per-core Whetstone MIPS.
    pub whetstone_mips: f64,
    /// Measured per-core Dhrystone MIPS.
    pub dhrystone_mips: f64,
}

/// Multicore contention multiplier: running on all cores at once slows
/// each core by `contention · log₂(cores)`.
pub fn contention_factor(params: &WorldParams, cores: u32) -> f64 {
    let log2 = (cores.max(1) as f64).log2();
    (1.0 - params.contention_per_log2_cores * log2).max(0.5)
}

/// Execute the benchmark pair on `hw`, with contention and noise.
pub fn run_benchmarks(params: &WorldParams, hw: &Hardware, rng: &mut dyn Rng) -> BenchmarkResult {
    let contention = contention_factor(params, hw.cores);
    let noise = |rng: &mut dyn Rng| 1.0 + params.benchmark_noise * standard_normal(rng);
    BenchmarkResult {
        whetstone_mips: (hw.whetstone_mips * contention * noise(rng)).max(1.0),
        dhrystone_mips: (hw.dhrystone_mips * contention * noise(rng)).max(1.0),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use resmodel_stats::rng::seeded;
    use resmodel_trace::{CpuFamily, OsFamily};

    fn hw(cores: u32) -> Hardware {
        Hardware {
            cores,
            per_core_memory_mb: 1024.0,
            whetstone_mips: 1500.0,
            dhrystone_mips: 3000.0,
            avail_disk_gb: 50.0,
            total_disk_gb: 100.0,
            os: OsFamily::WindowsXp,
            cpu: CpuFamily::IntelCore2,
            quality_z: 0.0,
        }
    }

    #[test]
    fn contention_monotone_in_cores() {
        let p = WorldParams::with_scale(0.01, 1);
        assert_eq!(contention_factor(&p, 1), 1.0);
        assert!(contention_factor(&p, 2) < 1.0);
        assert!(contention_factor(&p, 8) < contention_factor(&p, 2));
        assert!(contention_factor(&p, 1 << 30) >= 0.5);
    }

    #[test]
    fn measurements_center_on_truth() {
        let p = WorldParams::with_scale(0.01, 1);
        let mut rng = seeded(11);
        let h = hw(1);
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|_| run_benchmarks(&p, &h, &mut rng).whetstone_mips)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1500.0).abs() / 1500.0 < 0.01, "mean {mean}");
    }

    #[test]
    fn multicore_measures_slower() {
        let p = WorldParams::with_scale(0.01, 1);
        let mut rng = seeded(12);
        let single = run_benchmarks(&p, &hw(1), &mut rng);
        let mut rng2 = seeded(12);
        let octo = run_benchmarks(&p, &hw(8), &mut rng2);
        assert!(octo.whetstone_mips < single.whetstone_mips);
        assert!(octo.dhrystone_mips < single.dhrystone_mips);
    }

    #[test]
    fn measurements_stay_positive() {
        let mut p = WorldParams::with_scale(0.01, 1);
        p.benchmark_noise = 5.0; // absurd noise must still not go negative
        let mut rng = seeded(13);
        for _ in 0..200 {
            let r = run_benchmarks(&p, &hw(4), &mut rng);
            assert!(r.whetstone_mips >= 1.0 && r.dhrystone_mips >= 1.0);
        }
    }
}
