//! The world simulation: host arrivals, lifetimes, server contacts and
//! measurement recording.

use crate::bench_exec::run_benchmarks;
use crate::hardware::{corrupt_hardware, sample_hardware, Hardware};
use crate::params::WorldParams;
use rand::{Rng, RngExt};
use rayon::prelude::*;
use resmodel_core::model::PCM_TIERS_MB;
use resmodel_core::HostModel;
use resmodel_popsim::timeline::PoissonArrivals;
use resmodel_stats::distributions::Weibull;
use resmodel_stats::rng::{seeded, seeded_substream};
use resmodel_stats::sampling::standard_normal;
use resmodel_stats::Distribution;
use resmodel_trace::gpu::{gpu_presence_fraction, sample_gpu_memory};
use resmodel_trace::{GpuClass, GpuInfo, HostRecord, ResourceSnapshot, SimDate, Trace};

/// Run the full world simulation and return the recorded trace.
///
/// Deterministic: the same `params` (including `seed`) always produce a
/// bitwise-identical trace. The arrival timeline comes from the
/// population engine's Poisson sampler (`resmodel_popsim::timeline`),
/// and host `i` draws from its own RNG substream — so host lives
/// simulate in parallel, results never depend on the thread count, and
/// populations at different scales share a common prefix.
///
/// # Panics
///
/// Panics when `params.validate()` fails; parameters are caller
/// configuration, not runtime data.
pub fn simulate(params: &WorldParams) -> Trace {
    if let Err(e) = params.validate() {
        panic!("invalid WorldParams: {e}");
    }
    let truth = HostModel::paper();

    // Serial phase: the arrival schedule (one dedicated substream).
    let mut arrivals = PoissonArrivals::new(params.seed, params.start);
    let mut schedule: Vec<(u64, SimDate)> = Vec::new();
    loop {
        let t = arrivals.next_arrival(|d| params.arrival_rate(d));
        if t > params.end {
            break;
        }
        schedule.push((schedule.len() as u64, t));
    }

    // Parallel phase: each host's life is an independent substream;
    // collection preserves arrival order, so the trace is identical at
    // any thread count.
    schedule
        .par_iter()
        .map(|&(id, created)| simulate_host(params, &truth, id, created))
        .collect::<Vec<HostRecord>>()
        .into_iter()
        .collect()
}

/// Simulate one host's whole life: hardware, lifetime, contact schedule
/// and every recorded measurement.
fn simulate_host(params: &WorldParams, truth: &HostModel, id: u64, created: SimDate) -> HostRecord {
    let mut rng = seeded_substream(params.seed, id);
    let corrupt = rng.random::<f64>() < params.corrupt_fraction;
    let mut hw: Hardware = if corrupt {
        corrupt_hardware(&mut rng)
    } else {
        sample_hardware(params, truth, created, &mut rng)
    };

    // Lifetime: Weibull with creation-date-dependent scale, shortened
    // further for high-quality hardware (Fig 3 and Section V-B).
    let quality = hw.quality_z.clamp(-3.0, 3.0);
    let scale = params.lifetime_scale(created) * (-params.lifetime_quality_penalty * quality).exp();
    let lifetime = Weibull::new(params.lifetime_shape, scale.max(1e-3))
        .expect("validated parameters")
        .sample(&mut rng);
    let death = created + lifetime;

    let mut host = HostRecord::new(id.into(), created);
    host.os = hw.os;
    host.cpu = hw.cpu;

    // Contact schedule: creation, then exponential gaps, then a final
    // contact at death (when it happens inside the measurement window).
    let mut contacts = vec![created];
    let mut ct = created;
    loop {
        let u: f64 = rng.random::<f64>();
        ct = ct + (-(1.0 - u).ln() * params.contact_interval_days);
        if ct > death || ct > params.end {
            break;
        }
        contacts.push(ct);
    }
    if death <= params.end && *contacts.last().expect("non-empty") < death {
        contacts.push(death);
    }

    let mut avail_disk = hw.avail_disk_gb;
    let mut gpu_checked = false;
    for &when in &contacts {
        // Disk availability drifts as the user fills/frees space.
        avail_disk = (avail_disk * (params.disk_drift_sigma * standard_normal(&mut rng)).exp())
            .clamp(0.01 * hw.total_disk_gb, 0.98 * hw.total_disk_gb);

        // Occasional memory upgrade: move per-core memory up one tier.
        if !corrupt && rng.random::<f64>() < params.memory_upgrade_prob {
            if let Some(&next) = PCM_TIERS_MB
                .iter()
                .find(|&&tier| tier > hw.per_core_memory_mb)
            {
                hw.per_core_memory_mb = next;
            }
        }

        // GPU recording began September 2009; the server asks once.
        if !gpu_checked && when.year() >= 2009.67 {
            gpu_checked = true;
            if rng.random::<f64>() < gpu_presence_fraction(when.year()) {
                host.gpu = Some(GpuInfo {
                    class: GpuClass::sample_at(when.year(), rng.random::<f64>()),
                    memory_mb: sample_gpu_memory(when.year(), rng.random::<f64>()),
                    since: when,
                });
            }
        }

        let bench = run_benchmarks(params, &hw, &mut rng);
        host.record(ResourceSnapshot {
            t: when,
            cores: hw.cores,
            memory_mb: hw.memory_mb(),
            whetstone_mips: bench.whetstone_mips,
            dhrystone_mips: bench.dhrystone_mips,
            avail_disk_gb: avail_disk,
            total_disk_gb: hw.total_disk_gb,
        });
    }
    host
}

/// Convenience: simulate and sanitize in one call, returning the clean
/// trace (what the paper's analysis actually consumes).
pub fn simulate_sanitized(params: &WorldParams) -> Trace {
    let raw = simulate(params);
    resmodel_trace::sanitize::sanitize(&raw, resmodel_trace::sanitize::SanitizeRules::default())
        .trace
}

/// Summary statistics of a simulated world, for reports and sanity
/// checks.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldStats {
    /// Total hosts ever seen.
    pub total_hosts: usize,
    /// Active hosts at the given probe date.
    pub active_hosts: usize,
    /// Mean lifetime (days) of hosts created before the censoring
    /// cutoff.
    pub mean_lifetime_days: f64,
    /// Fraction of active hosts reporting a GPU at the probe date.
    pub gpu_fraction: f64,
}

impl WorldStats {
    /// Compute stats at `probe`, censoring lifetimes at `cutoff`.
    pub fn at(trace: &Trace, probe: SimDate, cutoff: SimDate) -> Self {
        let lifetimes = trace.lifetimes(cutoff);
        let views = trace.population_at(probe);
        let with_gpu = views.iter().filter(|v| v.gpu.is_some()).count();
        Self {
            total_hosts: trace.len(),
            active_hosts: trace.active_count(probe),
            mean_lifetime_days: if lifetimes.is_empty() {
                0.0
            } else {
                lifetimes.iter().sum::<f64>() / lifetimes.len() as f64
            },
            gpu_fraction: if views.is_empty() {
                0.0
            } else {
                with_gpu as f64 / views.len() as f64
            },
        }
    }
}

/// Deterministically sample `n` hosts' RNG streams — exposed for tests
/// and benchmarks that need raw per-host randomness.
pub fn host_rng(params: &WorldParams, host_id: u64) -> impl Rng {
    let _ = seeded(params.seed); // keep the seeding path exercised
    seeded_substream(params.seed, host_id)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use resmodel_stats::correlation::pearson;

    fn small_world() -> Trace {
        simulate(&WorldParams::with_scale(0.002, 42))
    }

    #[test]
    fn determinism() {
        let a = simulate(&WorldParams::with_scale(0.0005, 7));
        let b = simulate(&WorldParams::with_scale(0.0005, 7));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.hosts().iter().zip(b.hosts()) {
            assert_eq!(x, y);
        }
        let c = simulate(&WorldParams::with_scale(0.0005, 8));
        assert_ne!(a.len(), c.len());
    }

    #[test]
    fn active_count_in_scaled_band() {
        let trace = small_world();
        // Scale 0.002 of the paper's 300–350k band → roughly 600–700,
        // allow generous slack for the small sample.
        for &year in &[2007.0, 2008.0, 2009.0, 2010.0] {
            let n = trace.active_count(SimDate::from_year(year));
            assert!(n > 350 && n < 1100, "active at {year}: {n}");
        }
    }

    #[test]
    fn lifetimes_fit_weibull_with_low_shape() {
        let trace = small_world();
        let lifetimes = trace.lifetimes(SimDate::from_year(2010.5));
        assert!(lifetimes.len() > 2000);
        let w = Weibull::fit_mle(&lifetimes).unwrap();
        // Ground truth shape 0.58; censoring at the window end biases
        // slightly, stay within a band.
        assert!(w.shape() > 0.45 && w.shape() < 0.75, "shape {}", w.shape());
    }

    #[test]
    fn newer_hosts_live_shorter() {
        let trace = small_world();
        let pairs = trace.creation_vs_lifetime(SimDate::from_year(2009.5));
        let (ys, ls): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let r = pearson(&ys, &ls).unwrap();
        assert!(r < -0.02, "creation-lifetime correlation {r}");
    }

    #[test]
    fn corrupt_fraction_near_paper() {
        let trace = simulate(&WorldParams::with_scale(0.005, 3));
        let report = resmodel_trace::sanitize::sanitize(
            &trace,
            resmodel_trace::sanitize::SanitizeRules::default(),
        );
        // Paper: 0.12%. Allow wide slack for small samples.
        assert!(
            report.discarded_fraction > 0.0002 && report.discarded_fraction < 0.004,
            "discarded {}",
            report.discarded_fraction
        );
    }

    #[test]
    fn gpu_recording_starts_sep_2009() {
        let trace = small_world();
        let before: usize = trace
            .population_at(SimDate::from_year(2009.0))
            .iter()
            .filter(|v| v.gpu.is_some())
            .count();
        assert_eq!(before, 0, "GPUs must not be recorded before Sep 2009");
        let stats = WorldStats::at(
            &trace,
            SimDate::from_year(2010.6),
            SimDate::from_year(2010.5),
        );
        assert!(
            stats.gpu_fraction > 0.12 && stats.gpu_fraction < 0.35,
            "gpu fraction {}",
            stats.gpu_fraction
        );
    }

    #[test]
    fn resources_grow_over_time() {
        let trace = small_world();
        let mean = |year: f64, col: resmodel_trace::store::ResourceColumn| {
            let data = trace.column_at(SimDate::from_year(year), col);
            data.iter().sum::<f64>() / data.len() as f64
        };
        use resmodel_trace::store::ResourceColumn as C;
        assert!(mean(2010.0, C::Cores) > mean(2006.0, C::Cores) * 1.3);
        assert!(mean(2010.0, C::Memory) > mean(2006.0, C::Memory) * 1.8);
        assert!(mean(2010.0, C::Dhrystone) > mean(2006.0, C::Dhrystone) * 1.4);
        assert!(mean(2010.0, C::Disk) > mean(2006.0, C::Disk) * 1.8);
    }

    #[test]
    fn cross_sectional_correlations_match_table_iii_shape() {
        let trace = simulate_sanitized(&WorldParams::with_scale(0.003, 9));
        let date = SimDate::from_year(2009.0);
        use resmodel_trace::store::ResourceColumn as C;
        let cores = trace.column_at(date, C::Cores);
        let mem = trace.column_at(date, C::Memory);
        let whet = trace.column_at(date, C::Whetstone);
        let dhry = trace.column_at(date, C::Dhrystone);
        let disk = trace.column_at(date, C::Disk);
        let r_cm = pearson(&cores, &mem).unwrap();
        assert!(r_cm > 0.4, "cores-mem {r_cm}");
        let r_wd = pearson(&whet, &dhry).unwrap();
        assert!(r_wd > 0.45, "whet-dhry {r_wd}");
        let r_dc = pearson(&disk, &cores).unwrap();
        assert!(r_dc.abs() < 0.2, "disk-cores {r_dc}");
    }

    #[test]
    fn snapshots_are_time_ordered_and_bounded() {
        let trace = small_world();
        let params = WorldParams::with_scale(0.002, 42);
        for h in trace.hosts().iter().take(500) {
            let snaps = h.snapshots();
            assert!(!snaps.is_empty());
            for w in snaps.windows(2) {
                assert!(w[1].t >= w[0].t);
            }
            assert!(snaps.last().unwrap().t <= params.end);
        }
    }

    #[test]
    #[should_panic(expected = "invalid WorldParams")]
    fn simulate_rejects_invalid_params() {
        let mut p = WorldParams::with_scale(0.01, 1);
        p.scale = -1.0;
        simulate(&p);
    }
}
