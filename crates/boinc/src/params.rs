//! Parameters of the synthetic volunteer-computing world.

use resmodel_error::ResmodelError;
use resmodel_trace::SimDate;
use serde::{Deserialize, Serialize};

/// All knobs of the world simulation.
///
/// Defaults reproduce the paper's population at `scale = 1.0` (≈3-4
/// million hosts over 2005–2010, 300–350k active); experiments normally
/// run at `scale` 0.003–0.03 for speed. Every run is fully determined
/// by `seed`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldParams {
    /// RNG seed; same seed → bitwise-identical trace.
    pub seed: u64,
    /// First day hosts may arrive.
    pub start: SimDate,
    /// End of the measurement period (the paper's data ends
    /// September 1, 2010).
    pub end: SimDate,
    /// Host arrivals per day at the start of 2006, before `scale`.
    pub base_arrivals_per_day: f64,
    /// Exponential growth rate of the arrival rate per year (matches
    /// the shortening lifetimes so the active count stays in the
    /// 300–350k band as in Fig 2).
    pub arrival_growth_per_year: f64,
    /// Global population scale factor.
    pub scale: f64,
    /// Weibull shape of host lifetimes (paper Fig 1: 0.58).
    pub lifetime_shape: f64,
    /// Weibull scale (days) of lifetimes for hosts created at the start
    /// of 2006.
    pub lifetime_scale_2006: f64,
    /// Exponential trend of the lifetime scale per year (negative:
    /// newer hosts stay for less time, Fig 3).
    pub lifetime_trend_per_year: f64,
    /// Extra lifetime shortening per z-score of hardware quality (the
    /// paper found better-resourced hosts leave sooner).
    pub lifetime_quality_penalty: f64,
    /// How far (in years) the hardware *market* leads the measured
    /// *population*. The paper's laws describe the active population,
    /// which is an age mixture of past purchase cohorts; sampling each
    /// cohort from the law evaluated `lead` years ahead makes the
    /// recorded population reproduce the published laws. Roughly the
    /// mean age of an active host (~1.1 years under the default
    /// lifetime mixture).
    pub hardware_lead_years: f64,
    /// Mean days between server contacts (measurements).
    pub contact_interval_days: f64,
    /// Relative per-measurement benchmark noise (σ of a multiplicative
    /// normal).
    pub benchmark_noise: f64,
    /// Per-core slowdown of measured benchmarks per log₂(cores) —
    /// shared memory/bus contention when running on all cores at once.
    pub contention_per_log2_cores: f64,
    /// Probability that a host's benchmark speeds sit in the
    /// mid-distribution "spike" instead of the smooth normal body.
    pub benchmark_spike_fraction: f64,
    /// Probability that a host reports an intermediate per-core-memory
    /// value (e.g. 1280 MB) instead of a canonical tier.
    pub intermediate_pcm_fraction: f64,
    /// Probability of a non-power-of-two core count (paper: <0.3%).
    pub non_pow2_core_fraction: f64,
    /// Probability that a host's reports are corrupt (paper discards
    /// 0.12%).
    pub corrupt_fraction: f64,
    /// σ of the multiplicative random walk applied to available disk at
    /// each contact.
    pub disk_drift_sigma: f64,
    /// Per-contact probability of a memory upgrade (per-core memory
    /// moves up one tier).
    pub memory_upgrade_prob: f64,
}

impl WorldParams {
    /// Parameters at a given population scale.
    pub fn with_scale(scale: f64, seed: u64) -> Self {
        Self {
            seed,
            // Start early enough that the population age mixture is in
            // steady state by 2006, and run slightly past September
            // 2010 so the paper's final Sep-1-2010 snapshot has full
            // activity coverage (a host is only "active" at T if some
            // later contact exists).
            start: SimDate::from_year(2004.0),
            end: SimDate::from_year(2010.8),
            base_arrivals_per_day: 1120.0,
            arrival_growth_per_year: 0.18,
            scale,
            lifetime_shape: 0.58,
            lifetime_scale_2006: 185.0,
            lifetime_trend_per_year: -0.23,
            lifetime_quality_penalty: 0.08,
            hardware_lead_years: 1.1,
            contact_interval_days: 20.0,
            benchmark_noise: 0.02,
            contention_per_log2_cores: 0.015,
            benchmark_spike_fraction: 0.12,
            intermediate_pcm_fraction: 0.15,
            non_pow2_core_fraction: 0.003,
            corrupt_fraction: 0.0012,
            disk_drift_sigma: 0.04,
            memory_upgrade_prob: 0.0015,
        }
    }

    /// Arrival rate (hosts/day) at `date`, after scaling.
    pub fn arrival_rate(&self, date: SimDate) -> f64 {
        self.scale
            * self.base_arrivals_per_day
            * (self.arrival_growth_per_year * date.years_since_2006()).exp()
    }

    /// Weibull scale (days) for a host created at `date`, before the
    /// quality penalty.
    pub fn lifetime_scale(&self, created: SimDate) -> f64 {
        self.lifetime_scale_2006 * (self.lifetime_trend_per_year * created.years_since_2006()).exp()
    }

    /// Validate parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a [`ResmodelError::Config`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), ResmodelError> {
        const CONTEXT: &str = "world parameters";
        let bad = |message: String| {
            Err(ResmodelError::Config {
                context: CONTEXT,
                message,
            })
        };
        if !(self.scale > 0.0) {
            return bad(format!("scale must be > 0, got {}", self.scale));
        }
        if self.end <= self.start {
            return bad("end must be after start".into());
        }
        if !(self.lifetime_shape > 0.0) {
            return bad("lifetime_shape must be > 0".into());
        }
        if !(self.contact_interval_days > 0.0) {
            return bad("contact_interval_days must be > 0".into());
        }
        for (name, v) in [
            ("benchmark_spike_fraction", self.benchmark_spike_fraction),
            ("intermediate_pcm_fraction", self.intermediate_pcm_fraction),
            ("non_pow2_core_fraction", self.non_pow2_core_fraction),
            ("corrupt_fraction", self.corrupt_fraction),
            ("memory_upgrade_prob", self.memory_upgrade_prob),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return bad(format!("{name} must be a probability, got {v}"));
            }
        }
        Ok(())
    }
}

impl Default for WorldParams {
    /// Full SETI@home scale (use [`WorldParams::with_scale`] with a
    /// small factor for experiments).
    fn default() -> Self {
        Self::with_scale(1.0, 0)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(WorldParams::default().validate().is_ok());
        assert!(WorldParams::with_scale(0.01, 5).validate().is_ok());
    }

    #[test]
    fn invalid_params_detected() {
        let mut p = WorldParams::with_scale(0.01, 1);
        p.scale = 0.0;
        assert!(p.validate().is_err());
        let mut p = WorldParams::with_scale(0.01, 1);
        p.end = p.start;
        assert!(p.validate().is_err());
        let mut p = WorldParams::with_scale(0.01, 1);
        p.corrupt_fraction = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn arrival_rate_grows() {
        let p = WorldParams::with_scale(1.0, 1);
        let r2006 = p.arrival_rate(SimDate::from_year(2006.0));
        let r2010 = p.arrival_rate(SimDate::from_year(2010.0));
        assert!((r2006 - 1120.0).abs() < 1e-9);
        assert!(r2010 > r2006 * 1.8 && r2010 < r2006 * 2.5);
    }

    #[test]
    fn lifetime_scale_shrinks_for_newer_hosts() {
        let p = WorldParams::with_scale(1.0, 1);
        let l2005 = p.lifetime_scale(SimDate::from_year(2005.0));
        let l2009 = p.lifetime_scale(SimDate::from_year(2009.0));
        assert!(l2005 > l2009 * 2.0, "2005 {l2005} vs 2009 {l2009}");
    }

    #[test]
    fn steady_state_active_count_in_paper_band() {
        // Little's law: active ≈ arrival rate × mean lifetime. At scale
        // 1 and 2006 rates: 1120/day × (185·Γ(1+1/0.58) ≈ 290 d) ≈ 325k.
        let p = WorldParams::default();
        let rate = p.arrival_rate(SimDate::from_year(2006.0));
        let mean_life = 185.0 * resmodel_stats::special::gamma(1.0 + 1.0 / 0.58);
        let active = rate * mean_life;
        assert!(active > 280_000.0 && active < 380_000.0, "active {active}");
    }
}
