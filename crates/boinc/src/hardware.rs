//! Ground-truth hardware assignment for newly created hosts.
//!
//! The "true" hardware of a synthetic host is drawn from the paper's
//! own published laws (via [`resmodel_core::HostModel::paper`]) at the
//! host's *creation* date, then perturbed with the artifacts the real
//! trace carries: intermediate per-core-memory values, non-power-of-two
//! core counts and a mid-distribution benchmark spike. Mixing creation
//! dates inside a living population is what produces the paper's
//! cross-sectional Table III correlations (hosts created recently have
//! more cores *and* faster processors).

use crate::params::WorldParams;
use rand::{Rng, RngExt};
use resmodel_core::{HostGenerator, HostModel};
use resmodel_stats::sampling::standard_normal;
use resmodel_trace::{CpuFamily, OsFamily, SimDate};
use serde::{Deserialize, Serialize};

/// The immutable "true" hardware of one host, fixed at creation (until
/// an upgrade event mutates memory).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hardware {
    /// Core count (almost always a power of two ≤ 8).
    pub cores: u32,
    /// Per-core memory, MB.
    pub per_core_memory_mb: f64,
    /// True single-run Whetstone speed, MIPS.
    pub whetstone_mips: f64,
    /// True single-run Dhrystone speed, MIPS.
    pub dhrystone_mips: f64,
    /// Available disk at creation, GB.
    pub avail_disk_gb: f64,
    /// Total disk, GB.
    pub total_disk_gb: f64,
    /// Operating system family.
    pub os: OsFamily,
    /// Processor family.
    pub cpu: CpuFamily,
    /// Hardware quality z-score (used for the lifetime penalty).
    pub quality_z: f64,
}

impl Hardware {
    /// Total memory, MB.
    pub fn memory_mb(&self) -> f64 {
        self.per_core_memory_mb * self.cores as f64
    }
}

/// Intermediate per-core-memory values that real hosts report but the
/// paper's model discards.
const INTERMEDIATE_PCM_MB: [f64; 4] = [384.0, 1280.0, 1792.0, 3072.0];

/// Sample a host's true hardware at its creation date.
pub fn sample_hardware(
    params: &WorldParams,
    truth: &HostModel,
    created: SimDate,
    rng: &mut dyn Rng,
) -> Hardware {
    // Cohort hardware reflects the market at purchase time, which leads
    // the (age-mixed) population laws; see `WorldParams::hardware_lead_years`.
    let market = created + params.hardware_lead_years * 365.25;
    let base = truth.generate_host(market, rng);
    let mut cores = base.cores;
    let mut pcm = base.memory_per_core_mb();
    let mut whet = base.whetstone_mips;
    let mut dhry = base.dhrystone_mips;

    // Non-power-of-two cores: a tri-core console-style or hexa-core box.
    if rng.random::<f64>() < params.non_pow2_core_fraction {
        cores = if rng.random::<f64>() < 0.5 { 3 } else { 6 };
    }

    // Some users report intermediate memory configurations.
    if rng.random::<f64>() < params.intermediate_pcm_fraction {
        let idx = rng.random_range(0..INTERMEDIATE_PCM_MB.len());
        pcm = INTERMEDIATE_PCM_MB[idx];
    }

    // The benchmark "spike": a popular commodity part whose speed sits
    // near the centre of the distribution, narrowing the histogram
    // around the median (the paper's reason the normal fit is not
    // perfect).
    if rng.random::<f64>() < params.benchmark_spike_fraction {
        let (wm, _) = truth.whetstone_moments(market);
        let (dm, _) = truth.dhrystone_moments(market);
        whet = wm * 0.95 * (1.0 + 0.03 * standard_normal(rng));
        dhry = dm * 0.95 * (1.0 + 0.03 * standard_normal(rng));
    }

    // Available disk is a uniform fraction of total (Section V-C), so
    // total = available / U with U away from 0 to avoid absurd totals.
    let frac: f64 = 0.05 + 0.90 * rng.random::<f64>();
    let total_disk = base.avail_disk_gb / frac;

    // Quality z-score relative to the cohort's expected speeds.
    let (wm, wv) = truth.whetstone_moments(market);
    let (dm, dv) = truth.dhrystone_moments(market);
    let quality_z = 0.5 * ((whet - wm) / wv.sqrt() + (dhry - dm) / dv.sqrt());

    Hardware {
        cores,
        per_core_memory_mb: pcm,
        whetstone_mips: whet,
        dhrystone_mips: dhry,
        avail_disk_gb: base.avail_disk_gb,
        total_disk_gb: total_disk,
        os: OsFamily::sample_at(market.year(), rng.random::<f64>()),
        cpu: CpuFamily::sample_at(market.year(), rng.random::<f64>()),
        quality_z,
    }
}

/// Corrupt-host hardware: absurd values that must trip the paper's
/// sanitization thresholds.
pub fn corrupt_hardware(rng: &mut dyn Rng) -> Hardware {
    let which = rng.random_range(0..4u32);
    let mut hw = Hardware {
        cores: 2,
        per_core_memory_mb: 1024.0,
        whetstone_mips: 1500.0,
        dhrystone_mips: 3000.0,
        avail_disk_gb: 50.0,
        total_disk_gb: 100.0,
        os: OsFamily::WindowsXp,
        cpu: CpuFamily::Pentium4,
        quality_z: 0.0,
    };
    match which {
        0 => hw.cores = 256 + rng.random_range(0..1024u32),
        1 => hw.whetstone_mips = 1e6 * (1.0 + rng.random::<f64>()),
        2 => hw.per_core_memory_mb = 1e6,
        _ => hw.avail_disk_gb = 1e5 * (1.0 + rng.random::<f64>()),
    }
    hw
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use resmodel_stats::rng::seeded;
    use resmodel_trace::sanitize::SanitizeRules;

    fn sample_many(n: usize, year: f64) -> Vec<Hardware> {
        let params = WorldParams::with_scale(0.01, 1);
        let truth = HostModel::paper();
        let mut rng = seeded(17);
        (0..n)
            .map(|_| sample_hardware(&params, &truth, SimDate::from_year(year), &mut rng))
            .collect()
    }

    #[test]
    fn hardware_is_sane() {
        for hw in sample_many(500, 2008.0) {
            assert!(hw.cores >= 1 && hw.cores <= 8);
            assert!(hw.per_core_memory_mb >= 256.0 && hw.per_core_memory_mb <= 4096.0);
            assert!(hw.whetstone_mips > 0.0 && hw.dhrystone_mips > 0.0);
            assert!(hw.avail_disk_gb > 0.0);
            assert!(hw.total_disk_gb >= hw.avail_disk_gb);
            assert!(hw.quality_z.is_finite());
        }
    }

    #[test]
    fn intermediate_pcm_appears_at_configured_rate() {
        let hws = sample_many(4000, 2008.0);
        let inter = hws
            .iter()
            .filter(|h| INTERMEDIATE_PCM_MB.contains(&h.per_core_memory_mb))
            .count();
        let frac = inter as f64 / hws.len() as f64;
        assert!((frac - 0.15).abs() < 0.03, "intermediate fraction {frac}");
    }

    #[test]
    fn non_pow2_cores_are_rare() {
        let hws = sample_many(8000, 2009.0);
        let odd = hws.iter().filter(|h| !h.cores.is_power_of_two()).count();
        let frac = odd as f64 / hws.len() as f64;
        assert!(frac < 0.01, "non-pow2 fraction {frac}");
    }

    #[test]
    fn memory_total_consistent() {
        let hw = sample_many(1, 2007.0)[0];
        assert!((hw.memory_mb() - hw.per_core_memory_mb * hw.cores as f64).abs() < 1e-9);
    }

    #[test]
    fn os_cpu_follow_market_trends() {
        let early = sample_many(3000, 2006.0);
        let late = sample_many(3000, 2010.0);
        let frac = |hws: &[Hardware], f: fn(&Hardware) -> bool| {
            hws.iter().filter(|h| f(h)).count() as f64 / hws.len() as f64
        };
        assert!(
            frac(&early, |h| h.cpu == CpuFamily::Pentium4)
                > frac(&late, |h| h.cpu == CpuFamily::Pentium4)
        );
        assert!(
            frac(&late, |h| h.cpu == CpuFamily::IntelCore2)
                > frac(&early, |h| h.cpu == CpuFamily::IntelCore2)
        );
        assert!(frac(&early, |h| h.os == OsFamily::WindowsXp) > 0.5);
    }

    #[test]
    fn corrupt_hardware_trips_sanitizer() {
        use resmodel_trace::{HostRecord, ResourceSnapshot};
        let mut rng = seeded(3);
        let rules = SanitizeRules::default();
        for i in 0..100u64 {
            let hw = corrupt_hardware(&mut rng);
            let mut rec = HostRecord::new(i.into(), SimDate::from_year(2007.0));
            rec.record(ResourceSnapshot {
                t: SimDate::from_year(2007.1),
                cores: hw.cores,
                memory_mb: hw.memory_mb(),
                whetstone_mips: hw.whetstone_mips,
                dhrystone_mips: hw.dhrystone_mips,
                avail_disk_gb: hw.avail_disk_gb,
                total_disk_gb: hw.total_disk_gb,
            });
            assert!(
                rules.is_corrupt(&rec),
                "corrupt hardware {i} passed sanitizer"
            );
        }
    }
}
