//! The sharded, streaming dispatch engine.
//!
//! ## Determinism contract
//!
//! Mirroring the popsim engine one layer up:
//!
//! * Job generation is a serial function of `(spec.seed, family index)`
//!   — each family draws its arrival stream and sizes from a dedicated
//!   substream. Arrivals within a family are nondecreasing, so a k-way
//!   merge that always takes the lowest-arrival head (ties → lowest
//!   family index) reproduces, byte for byte, what materializing every
//!   job and stable-sorting by arrival used to produce — without ever
//!   holding more than one lookahead job per family in memory.
//! * Job `j` routes to dispatch shard
//!   `substream(seed ^ ROUTE, j) % shard_count` and host `h` to shard
//!   `h.id % shard_count` — pure functions of the spec, never of the
//!   machine.
//! * Jobs flow through fixed-size segments (`SEGMENT_JOBS` arrivals
//!   per segment, a pure function of the stream). Within a segment
//!   each shard's batch is an independent unit of work: workers claim
//!   batches from a shared queue (work stealing — an idle worker takes
//!   a batch outside its round-robin share), but every shard's state
//!   evolves only under its own lock, driven by its own jobs in
//!   arrival order. Shard outcomes merge in shard order after the last
//!   segment, so a [`DispatchReport`] is byte-identical (after
//!   [`DispatchReport::zero_timings`]) at any thread count. Steal
//!   counts are machine facts and live outside the deterministic
//!   fingerprint, like wall clock.
//!
//! While one segment dispatches, the next is generated and routed
//! concurrently (double buffering via `rayon::join`), so peak memory
//! is O(segment), not O(total jobs).

use crate::policy::DispatchPolicy;
use crate::report::{DispatchReport, DispatchTotals, FamilyDispatchStats};
use crate::workload::{JobFamily, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;
use resmodel_allocsim::utility;
use resmodel_error::ResmodelError;
use resmodel_obs::{Collector, Histogram};
use resmodel_popsim::EngineReport;
use resmodel_stats::distributions::LogNormal;
use resmodel_stats::rng::{seeded_substream, substream};
use resmodel_stats::Distribution;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Substream salt for per-family job generation (xor-ed with the
/// family index).
const FAMILY_SALT: u64 = 0xD15A_7C40_0000_0001;
/// Substream salt for job → shard routing.
const ROUTE_SALT: u64 = 0xD15A_7C40_0000_0002;
/// Substream salt for per-job candidate sampling.
const EXEC_SALT: u64 = 0xD15A_7C40_0000_0003;

/// Arrivals per streaming segment — a fixed constant so segment
/// boundaries (and everything derived from them) never depend on the
/// machine. Two segments of routed jobs are in flight at once, so peak
/// job memory is ~2 × this × `size_of::<JobRec>`.
const SEGMENT_JOBS: usize = 1 << 17;

/// One generated job. Its global index in arrival order is its id.
#[derive(Debug, Clone, Copy)]
struct Job {
    /// Arrival, hours from window start.
    arrival: f64,
    /// Size, GFLOP-equivalents.
    size: f64,
    /// Family index in the spec.
    family: u32,
}

/// One routed job inside a segment's per-shard batch.
#[derive(Debug, Clone, Copy)]
struct JobRec {
    /// Arrival, hours from window start.
    arrival: f64,
    /// Size, GFLOP-equivalents.
    size: f64,
    /// Global arrival-order id.
    id: u32,
    /// Family index in the spec.
    family: u32,
}

/// Dispatch `spec`'s workload onto the fleet of `engine` under
/// `policy`.
///
/// Hosts live and die on the popsim timeline; when the scenario models
/// availability, progress only accrues during ON sessions of the
/// host's deterministic [`resmodel_avail::Schedule`] (checkpoint/resume
/// across OFF gaps, or restart, per `spec.checkpointing`).
///
/// # Errors
///
/// Returns a [`ResmodelError::Dispatch`] naming the `policy/workload`
/// grid point, wrapping the spec's validation error.
pub fn dispatch(
    engine: &EngineReport,
    spec: &WorkloadSpec,
    policy: DispatchPolicy,
) -> Result<DispatchReport, ResmodelError> {
    dispatch_observed(engine, spec, policy, &Collector::disabled())
}

/// [`dispatch`] with metrics: job/replica counters, candidate-sampling
/// counts, segment/steal telemetry, and a per-policy placement-latency
/// histogram (sim-hours, so it is thread-count invariant) flow into
/// `obs` out-of-band. The returned report is byte-identical to
/// [`dispatch`]'s.
///
/// # Errors
///
/// Same conditions as [`dispatch`].
pub fn dispatch_observed(
    engine: &EngineReport,
    spec: &WorkloadSpec,
    policy: DispatchPolicy,
    obs: &Collector,
) -> Result<DispatchReport, ResmodelError> {
    let _span = obs.span("dispatch");
    let point = || format!("{}/{}", policy.label(), spec.name);
    spec.validate()
        .map_err(|e| ResmodelError::dispatch(point(), e))?;

    let t_run = Instant::now();
    let shard_count = spec.shard_count;
    let profiles: Vec<_> = spec.families.iter().map(|f| f.app.profile()).collect();

    // Route hosts onto the dispatch shards.
    let mut host_shards: Vec<Vec<u64>> = vec![Vec::new(); shard_count];
    for host in engine.fleet.iter() {
        host_shards[(host.id % shard_count as u64) as usize].push(host.id);
    }
    for hosts in &mut host_shards {
        hosts.sort_unstable();
    }

    // Persistent per-shard states (lanes + eligibility sweep), built in
    // parallel — each is a pure function of its host list.
    let states: Vec<Mutex<ShardState>> = host_shards
        .par_iter()
        .map(|host_ids| Mutex::new(ShardState::build(engine, spec, &profiles, host_ids)))
        .collect();

    let ctx = BatchCtx {
        spec,
        policy,
        exec_seed: spec.seed ^ EXEC_SALT,
        horizon: spec.horizon_hours,
    };

    // Stream jobs through double-buffered segments: while segment k
    // dispatches, segment k+1 is generated and routed.
    let t0 = Instant::now();
    let route_seed = spec.seed ^ ROUTE_SALT;
    let mut stream = JobStream::new(spec);
    let mut next_id: u64 = 0;
    let mut cur: Vec<Vec<JobRec>> = vec![Vec::new(); shard_count];
    let mut nxt: Vec<Vec<JobRec>> = vec![Vec::new(); shard_count];
    let mut generate_ms = 0.0;
    let mut segments: u64 = 0;
    let mut depth_hist = Histogram::new();
    let steals = AtomicU64::new(0);

    let t_gen = Instant::now();
    let mut pending = fill_segment(&mut stream, route_seed, shard_count, &mut next_id, &mut cur)
        .map_err(|e| ResmodelError::dispatch(point(), e))?;
    generate_ms += ms_since(t_gen);

    while pending > 0 {
        segments += 1;
        let nonempty: Vec<u32> = (0..shard_count as u32)
            .filter(|&s| !cur[s as usize].is_empty())
            .collect();
        // Claim-queue depth: shard batches pending this segment — a
        // pure function of the stream, unlike the steal counter.
        depth_hist.record_u64(nonempty.len() as u64);
        // The worker count is resolved here, on the pool's thread, so
        // a `ThreadPoolBuilder::install` override is honored.
        let workers = rayon::current_num_threads().min(nonempty.len()).max(1);
        let (gen_next, ()) = rayon::join(
            || {
                let t = Instant::now();
                let r = fill_segment(&mut stream, route_seed, shard_count, &mut next_id, &mut nxt);
                (r, ms_since(t))
            },
            || process_segment(&states, &cur, &nonempty, &ctx, workers, &steals),
        );
        generate_ms += gen_next.1;
        pending = gen_next
            .0
            .map_err(|e| ResmodelError::dispatch(point(), e))?;
        std::mem::swap(&mut cur, &mut nxt);
    }
    let total_jobs = usize::try_from(next_id).unwrap_or(usize::MAX);
    let dispatch_ms = ms_since(t0);

    // Deterministic merge in shard order.
    let n_fam = spec.families.len();
    let mut m = ShardOutcome::empty(n_fam);
    for state in states {
        let mut st = state
            .into_inner()
            .unwrap_or_else(|_| unreachable!("shard workers do not panic"));
        st.out.busy_on_hours = st.lanes.busy_on.iter().sum();
        let o = &st.out;
        m.hosts += o.hosts;
        m.total_on_hours += o.total_on_hours;
        m.busy_on_hours += o.busy_on_hours;
        m.replicas += o.replicas;
        m.completed += o.completed;
        m.failed += o.failed;
        m.unassigned += o.unassigned;
        m.deadline_jobs += o.deadline_jobs;
        m.deadline_missed += o.deadline_missed;
        m.latency_sum += o.latency_sum;
        m.makespan = m.makespan.max(o.makespan);
        m.predicted_utility += o.predicted_utility;
        m.realized_utility += o.realized_utility;
        m.latency_hist.merge(&o.latency_hist);
        m.candidate_draws += o.candidate_draws;
        m.candidates_scored += o.candidates_scored;
        for (a, b) in m.families.iter_mut().zip(&o.families) {
            a.jobs += b.jobs;
            a.completed += b.completed;
            a.failed += b.failed;
            a.unassigned += b.unassigned;
            a.deadline_missed += b.deadline_missed;
            a.latency_sum += b.latency_sum;
            a.size_sum += b.size_sum;
        }
    }

    let mean = |sum: f64, n: usize| if n == 0 { 0.0 } else { sum / n as f64 };
    let families = spec
        .families
        .iter()
        .zip(&m.families)
        .map(|(f, a)| FamilyDispatchStats {
            name: f.name.clone(),
            jobs: a.jobs,
            completed: a.completed,
            failed: a.failed,
            unassigned: a.unassigned,
            deadline_missed: a.deadline_missed,
            mean_latency_hours: mean(a.latency_sum, a.completed),
            mean_size_gflop: mean(a.size_sum, a.jobs),
        })
        .collect();

    let totals = DispatchTotals {
        hosts: m.hosts,
        jobs: total_jobs,
        replicas: m.replicas,
        completed: m.completed,
        failed: m.failed,
        unassigned: m.unassigned,
        deadline_missed: m.deadline_missed,
        deadline_miss_rate: mean(m.deadline_missed as f64, m.deadline_jobs),
        makespan_hours: m.makespan,
        mean_latency_hours: mean(m.latency_sum, m.completed),
        jobs_per_sim_hour: m.completed as f64 / spec.horizon_hours,
        host_utilization: if m.total_on_hours > 0.0 {
            m.busy_on_hours / m.total_on_hours
        } else {
            0.0
        },
        predicted_utility: m.predicted_utility,
        realized_utility: m.realized_utility,
        utility_ratio: if m.predicted_utility > 0.0 {
            m.realized_utility / m.predicted_utility
        } else {
            0.0
        },
    };

    let wall_ms = ms_since(t_run);
    if obs.is_enabled() {
        obs.add("sched.dispatches", 1);
        obs.add("sched.jobs", total_jobs as u64);
        obs.add("sched.replicas", m.replicas as u64);
        obs.add("sched.jobs_completed", m.completed as u64);
        obs.add("sched.jobs_failed", m.failed as u64);
        obs.add("sched.jobs_unassigned", m.unassigned as u64);
        obs.add("sched.candidate_draws", m.candidate_draws);
        obs.add("sched.candidates_scored", m.candidates_scored);
        obs.add("sched.segments", segments);
        // How the claim queue was raced is a machine fact: the steal
        // counter is quarantined from the deterministic fingerprint by
        // its key (see `resmodel_obs::is_wall_clock_key`).
        obs.add("sched.steals", steals.load(Ordering::Relaxed));
        obs.merge_histogram("sched.segment_queue_depth", &depth_hist);
        obs.merge_histogram(
            &format!("sched.placement_latency_hours.{}", policy.label()),
            &m.latency_hist,
        );
        if wall_ms > 0.0 {
            #[allow(clippy::cast_precision_loss)]
            obs.set_gauge("sched.jobs_per_sec", total_jobs as f64 / (wall_ms / 1e3));
        }
    }
    Ok(DispatchReport {
        workload: spec.clone(),
        policy,
        totals,
        families,
        generate_ms,
        dispatch_ms,
        wall_ms,
        jobs_per_sec: if wall_ms > 0.0 {
            total_jobs as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
    })
}

fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

// ---------------------------------------------------------------------------
// Streaming job generation
// ---------------------------------------------------------------------------

/// One family's lazily-drawn arrival stream with a one-job lookahead.
/// Draw order (gap, then size) is identical to the old materializing
/// generator, so the emitted bytes are too.
struct FamilyStream {
    rng: StdRng,
    /// Median-anchored log-normal sizes; `None` → constant size.
    sizes: Option<LogNormal>,
    /// Current arrival-clock position, hours.
    t: f64,
    /// Jobs emitted so far (the `max_jobs` cap).
    emitted: usize,
    /// Next job `(arrival, size)`; `None` once the stream is done.
    head: Option<(f64, f64)>,
}

impl FamilyStream {
    /// Draw the next head, consuming the family RNG exactly as the
    /// materializing generator did: gap first (horizon check, then cap
    /// check), then size.
    fn advance(&mut self, fam: &JobFamily, horizon: f64) {
        // First-order thinning: exponential gap at the current rate —
        // exact for Poisson, the popsim arrival scheme for
        // time-varying shapes.
        let rate = fam.arrivals.rate(self.t).max(1e-9);
        let u: f64 = self.rng.random::<f64>();
        self.t += -(1.0 - u).ln() / rate;
        if self.t > horizon {
            self.head = None;
            return;
        }
        if fam.max_jobs > 0 && self.emitted >= fam.max_jobs {
            self.head = None;
            return;
        }
        let size = match &self.sizes {
            Some(d) => d.sample(&mut self.rng),
            None => fam.size_gflop,
        };
        self.head = Some((self.t, size));
        self.emitted += 1;
    }
}

/// The merged, arrival-ordered job stream: a k-way merge over the
/// per-family streams. Each family's arrivals are nondecreasing
/// (exponential gaps are ≥ 0), so always taking the lowest head —
/// breaking ties toward the lowest family index — reproduces the
/// stable family-major sort byte for byte.
struct JobStream<'a> {
    spec: &'a WorkloadSpec,
    families: Vec<FamilyStream>,
}

impl<'a> JobStream<'a> {
    fn new(spec: &'a WorkloadSpec) -> Self {
        let families = spec
            .families
            .iter()
            .enumerate()
            .map(|(fi, fam)| {
                let mut fs = FamilyStream {
                    rng: seeded_substream(spec.seed ^ FAMILY_SALT, fi as u64),
                    sizes: (fam.size_sigma > 0.0)
                        .then(|| LogNormal::new(fam.size_gflop.ln(), fam.size_sigma))
                        .transpose()
                        .ok()
                        .flatten(),
                    t: 0.0,
                    emitted: 0,
                    head: None,
                };
                fs.advance(fam, spec.horizon_hours);
                fs
            })
            .collect();
        JobStream { spec, families }
    }

    /// The next job in global arrival order, or `None` when every
    /// family stream is exhausted.
    fn next_job(&mut self) -> Option<Job> {
        let mut best: Option<(usize, f64)> = None;
        for (fi, fs) in self.families.iter().enumerate() {
            if let Some((t, _)) = fs.head {
                // Strict `<`: on arrival ties the lowest family index
                // wins, matching the stable sort's family-major order.
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((fi, t));
                }
            }
        }
        let (fi, _) = best?;
        let fs = &mut self.families[fi];
        let (arrival, size) = fs.head.take()?;
        fs.advance(&self.spec.families[fi], self.spec.horizon_hours);
        Some(Job {
            arrival,
            size,
            family: fi as u32,
        })
    }
}

/// Materialize the whole job list (tests and small tools only — the
/// hot path streams instead).
#[cfg(test)]
fn generate_jobs(spec: &WorkloadSpec) -> Vec<Job> {
    let mut stream = JobStream::new(spec);
    let mut jobs = Vec::new();
    while let Some(job) = stream.next_job() {
        jobs.push(job);
    }
    jobs
}

/// Pull up to [`SEGMENT_JOBS`] jobs from the stream and route them
/// into per-shard batches (buffers are reused across segments).
/// Returns the number of jobs routed; 0 means the stream is done.
///
/// # Errors
///
/// When the id counter would leave `u32` — the same bound the
/// materializing generator enforced on `jobs.len()`.
fn fill_segment(
    stream: &mut JobStream<'_>,
    route_seed: u64,
    shard_count: usize,
    next_id: &mut u64,
    bufs: &mut [Vec<JobRec>],
) -> Result<usize, ResmodelError> {
    for buf in bufs.iter_mut() {
        buf.clear();
    }
    let mut n = 0usize;
    while n < SEGMENT_JOBS {
        let Some(job) = stream.next_job() else { break };
        if *next_id >= u64::from(u32::MAX) {
            return Err(ResmodelError::config(
                "workload",
                "more than u32::MAX jobs generated",
            ));
        }
        #[allow(clippy::cast_possible_truncation)]
        let id = *next_id as u32;
        *next_id += 1;
        let s = (substream(route_seed, u64::from(id)) % shard_count as u64) as usize;
        bufs[s].push(JobRec {
            arrival: job.arrival,
            size: job.size,
            id,
            family: job.family,
        });
        n += 1;
    }
    Ok(n)
}

// ---------------------------------------------------------------------------
// Lanes: SoA host state with an interval arena and monotone cursors
// ---------------------------------------------------------------------------

/// Per-lane hot header: every scalar the sampling/scoring/commit hot
/// path reads for a randomly-drawn candidate, packed into 48 bytes so
/// one cache line covers them all — with d random candidates per
/// replica there is no sequential locality to exploit across lanes,
/// only within one lane's fields.
#[derive(Debug, Clone, Copy)]
struct LaneHot {
    /// Committed ON-hours (the FIFO queue tail).
    cursor_on: f64,
    /// Lifetime ON-hours — the lane's prefix tail, duplicated here so
    /// scoring never touches the far end of the arena.
    total: f64,
    /// Service rate, GFLOP-equivalents per ON-hour.
    speed: f64,
    /// Start of this lane's intervals in the shared arena.
    b0: u32,
    /// ON-session count.
    n_on: u32,
    /// Monotone search cursors — jobs sweep a shard in nondecreasing
    /// arrival order, so these advance amortized-O(1) where the old
    /// per-call binary searches paid O(log sessions) every time.
    on_hint: u32,
    wall_hint: u32,
    sess_hint: u32,
    /// Whether the host reported a GPU.
    gpu: bool,
}

/// All of one shard's host lanes: packed [`LaneHot`] headers plus
/// cold/aggregate columns, with every lane's ON intervals in one
/// shared arena — `pick()` touches cache lines, not pointer-chased
/// per-lane structs.
///
/// Lane `li` owns intervals `on_start/on_end[b0..b0 + n_on]` and
/// prefix entries `prefix[b0 + li ..= b0 + n_on + li]` (each lane's
/// prefix has one extra entry: `prefix[0] = 0`, last = total
/// ON-hours).
struct Lanes {
    n_fam: usize,
    hot: Vec<LaneHot>,
    /// Eligibility start (alive ∩ window), hours — activation key.
    a0: Vec<f64>,
    /// End of the last ON session — removal key.
    exit: Vec<f64>,
    /// Cobb–Douglas utility per job family, lane-major with stride
    /// `n_fam`.
    util: Vec<f64>,
    /// ON-hours actually consumed (work + failed-attempt churn).
    busy_on: Vec<f64>,
    on_start: Vec<f64>,
    on_end: Vec<f64>,
    prefix: Vec<f64>,
}

impl Lanes {
    fn new(n_fam: usize) -> Self {
        Lanes {
            n_fam,
            hot: Vec::new(),
            a0: Vec::new(),
            exit: Vec::new(),
            util: Vec::new(),
            busy_on: Vec::new(),
            on_start: Vec::new(),
            on_end: Vec::new(),
            prefix: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.hot.len()
    }

    /// Append a lane. `on` must be nonempty, in increasing order.
    fn push_lane(
        &mut self,
        a0: f64,
        speed: f64,
        gpu: bool,
        util: impl Iterator<Item = f64>,
        on: &[(f64, f64)],
    ) {
        debug_assert!(!on.is_empty());
        self.a0.push(a0);
        self.exit.push(on.last().map_or(0.0, |&(_, b)| b));
        self.util.extend(util);
        self.busy_on.push(0.0);
        #[allow(clippy::cast_possible_truncation)]
        let b0 = self.on_start.len() as u32;
        let mut acc = 0.0;
        self.prefix.push(0.0);
        for &(a, b) in on {
            self.on_start.push(a);
            self.on_end.push(b);
            acc += b - a;
            self.prefix.push(acc);
        }
        #[allow(clippy::cast_possible_truncation)]
        self.hot.push(LaneHot {
            cursor_on: 0.0,
            total: acc,
            speed,
            b0,
            n_on: on.len() as u32,
            on_hint: 0,
            wall_hint: 0,
            sess_hint: 0,
            gpu,
        });
    }

    /// Base of lane `li`'s prefix run (which has `n_on + 1` entries).
    #[inline]
    fn pbase(&self, li: usize) -> usize {
        self.hot[li].b0 as usize + li
    }

    #[inline]
    fn total_on(&self, li: usize) -> f64 {
        self.hot[li].total
    }

    /// ON-hours elapsed before wall time `t`, advancing the lane's
    /// sweep cursor; also returns the cursor's interval index. Only
    /// call with the nondecreasing per-shard job arrival clock; use
    /// [`Lanes::on_elapsed_cold`] for arbitrary lookahead times.
    #[inline]
    fn sweep(&mut self, li: usize, t: f64) -> (f64, usize) {
        let h = self.hot[li];
        let b0 = h.b0 as usize;
        let n = h.n_on as usize;
        let mut i = h.on_hint as usize;
        while i < n && self.on_end[b0 + i] <= t {
            i += 1;
        }
        #[allow(clippy::cast_possible_truncation)]
        {
            self.hot[li].on_hint = i as u32;
        }
        let p = self.prefix[b0 + li + i];
        if i == n {
            (p, i)
        } else {
            (p + (t - self.on_start[b0 + i]).max(0.0), i)
        }
    }

    #[inline]
    fn on_elapsed_sweep(&mut self, li: usize, t: f64) -> f64 {
        self.sweep(li, t).0
    }

    /// ON-hours elapsed before an arbitrary wall time `t` (binary
    /// search; no cursor update).
    fn on_elapsed_cold(&self, li: usize, t: f64) -> f64 {
        let h = self.hot[li];
        let b0 = h.b0 as usize;
        let n = h.n_on as usize;
        let i = self.on_end[b0..b0 + n].partition_point(|&b| b <= t);
        let p = self.prefix[b0 + li + i];
        if i == n {
            p
        } else {
            p + (t - self.on_start[b0 + i]).max(0.0)
        }
    }

    /// First prefix index `j ∈ [0, n+1)` … `n+1` sentinel … with
    /// `prefix[j] >= w`, galloping from `lo`. Caller guarantees every
    /// index `< lo` has `prefix < w` (the monotone-cursor invariant),
    /// so the result equals a full `partition_point`.
    #[inline]
    fn prefix_first_ge(&self, li: usize, w: f64, lo: usize) -> usize {
        let pb = self.pbase(li);
        let n = self.hot[li].n_on as usize;
        let mut lo_b = lo;
        let mut probe = lo;
        let mut step = 1usize;
        loop {
            if probe > n {
                break;
            }
            if self.prefix[pb + probe] >= w {
                break;
            }
            lo_b = probe + 1;
            probe += step;
            step <<= 1;
        }
        let mut hi_b = probe.min(n + 1);
        while lo_b < hi_b {
            let mid = lo_b + (hi_b - lo_b) / 2;
            if self.prefix[pb + mid] < w {
                lo_b = mid + 1;
            } else {
                hi_b = mid;
            }
        }
        lo_b
    }

    /// Wall time at which cumulative ON-hours reach `w` (`w` must be
    /// in `[0, total_on]`), galloping from prefix index `lo` (see
    /// [`Lanes::prefix_first_ge`]). Also returns the interval index,
    /// reusable as the next gallop start for nondecreasing `w`.
    #[inline]
    fn wall_at_on_from(&self, li: usize, w: f64, lo: usize) -> (f64, usize) {
        let h = self.hot[li];
        let n = h.n_on as usize;
        let i = self.prefix_first_ge(li, w, lo).clamp(1, n) - 1;
        (
            self.on_start[h.b0 as usize + i] + (w - self.prefix[h.b0 as usize + li + i]),
            i,
        )
    }

    /// Current backlog ahead of a job arriving at `t`, ON-hours.
    #[inline]
    fn backlog_at(&mut self, li: usize, t: f64) -> f64 {
        (self.hot[li].cursor_on - self.on_elapsed_sweep(li, t)).max(0.0)
    }

    /// Estimated completion wall time of `work` ON-hours queued at `t`;
    /// infeasible work is pushed past the window end, staying ordered
    /// so earliest-finish still ranks overloads sensibly.
    #[inline]
    fn estimate_finish(&mut self, li: usize, t: f64, work: f64, horizon: f64) -> f64 {
        let (elapsed, i) = self.sweep(li, t);
        let h = self.hot[li];
        let w0 = h.cursor_on.max(elapsed);
        let w1 = w0 + work;
        if w1 > h.total {
            return 2.0 * horizon + (w1 - h.total);
        }
        // Fast path: the finish lands inside the sweep's interval, so
        // the values the sweep just read (all L1-hot) pin it exactly —
        // no gallop needed. `prefix[i] < w1` is required: at `w1 ==
        // prefix[i]` the search resolves to the *previous* interval's
        // end.
        let pb = h.b0 as usize + li;
        if i < (h.n_on as usize) && self.prefix[pb + i] < w1 && w1 <= self.prefix[pb + i + 1] {
            return self.on_start[h.b0 as usize + i] + (w1 - self.prefix[pb + i]);
        }
        // Every prefix entry before the sweep cursor is < w1
        // (prefix[i] ≤ elapsed ≤ w0 < w1), so gallop from there.
        self.wall_at_on_from(li, w1, i).0
    }

    /// Commit `work` ON-hours arriving at wall time `t`; returns the
    /// completion wall time, or `None` when the host churns away (or
    /// the window ends) first. Failed work still consumes the lane's
    /// remaining capacity — the host ground away at it.
    fn commit(&mut self, li: usize, t: f64, work: f64, checkpointing: bool) -> Option<f64> {
        let (elapsed, si) = self.sweep(li, t);
        let w0 = self.hot[li].cursor_on.max(elapsed);
        let total = self.hot[li].total;
        if checkpointing {
            let w1 = w0 + work;
            if w1 <= total {
                self.hot[li].cursor_on = w1;
                self.busy_on[li] += w1 - w0;
                // Same sweep-interval fast path as `estimate_finish` —
                // a search from any valid start resolves to the same
                // interval, so the hint update stays consistent.
                let h = self.hot[li];
                let pb = h.b0 as usize + li;
                let (done, i) = if si < (h.n_on as usize)
                    && self.prefix[pb + si] < w1
                    && w1 <= self.prefix[pb + si + 1]
                {
                    (
                        self.on_start[h.b0 as usize + si] + (w1 - self.prefix[pb + si]),
                        si,
                    )
                } else {
                    self.wall_at_on_from(li, w1, h.wall_hint as usize)
                };
                #[allow(clippy::cast_possible_truncation)]
                {
                    self.hot[li].wall_hint = i as u32;
                }
                Some(done)
            } else {
                self.busy_on[li] += (total - w0).max(0.0);
                self.hot[li].cursor_on = total;
                None
            }
        } else {
            // Restart-on-interruption: the work unit needs one ON
            // session with `work` contiguous hours, starting where the
            // queue drains; every too-short session is burned retrying.
            if w0 >= total {
                return None;
            }
            let (t0, i0) = self.wall_at_on_from(li, w0, self.hot[li].wall_hint as usize);
            #[allow(clippy::cast_possible_truncation)]
            {
                self.hot[li].wall_hint = i0 as u32;
            }
            // Resume the session search from the last commit's session
            // — `t0` is nondecreasing across a lane's commits.
            let b0 = self.hot[li].b0 as usize;
            let n = self.hot[li].n_on as usize;
            let mut i = self.hot[li].sess_hint as usize;
            while i < n && self.on_end[b0 + i] <= t0 {
                i += 1;
            }
            #[allow(clippy::cast_possible_truncation)]
            {
                self.hot[li].sess_hint = i as u32;
            }
            while i < n {
                let start = self.on_start[b0 + i].max(t0);
                if self.on_end[b0 + i] - start >= work {
                    let done = start + work;
                    let w_done = self.on_elapsed_cold(li, done).max(w0);
                    self.busy_on[li] += w_done - w0;
                    self.hot[li].cursor_on = w_done;
                    return Some(done);
                }
                i += 1;
            }
            self.busy_on[li] += (total - w0).max(0.0);
            self.hot[li].cursor_on = total;
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Shard state and the per-batch hot loop
// ---------------------------------------------------------------------------

/// Per-family accumulator inside one shard.
#[derive(Debug, Clone, Default)]
struct FamAccum {
    jobs: usize,
    completed: usize,
    failed: usize,
    unassigned: usize,
    deadline_missed: usize,
    latency_sum: f64,
    size_sum: f64,
}

/// One shard's merged outcome.
struct ShardOutcome {
    hosts: usize,
    total_on_hours: f64,
    busy_on_hours: f64,
    replicas: usize,
    completed: usize,
    failed: usize,
    unassigned: usize,
    deadline_jobs: usize,
    deadline_missed: usize,
    latency_sum: f64,
    makespan: f64,
    predicted_utility: f64,
    realized_utility: f64,
    families: Vec<FamAccum>,
    /// Completed-job latency (sim-hours) — deterministic telemetry,
    /// merged order-invariantly into the collector after the shard
    /// merge.
    latency_hist: Histogram,
    /// Uniform draws spent sampling placement candidates.
    candidate_draws: u64,
    /// Distinct candidates actually scored.
    candidates_scored: u64,
}

impl ShardOutcome {
    fn empty(n_fam: usize) -> Self {
        Self {
            hosts: 0,
            total_on_hours: 0.0,
            busy_on_hours: 0.0,
            replicas: 0,
            completed: 0,
            failed: 0,
            unassigned: 0,
            deadline_jobs: 0,
            deadline_missed: 0,
            latency_sum: 0.0,
            makespan: 0.0,
            predicted_utility: 0.0,
            realized_utility: 0.0,
            families: vec![FamAccum::default(); n_fam],
            latency_hist: Histogram::new(),
            candidate_draws: 0,
            candidates_scored: 0,
        }
    }
}

/// Read-only dispatch context shared by every batch.
struct BatchCtx<'a> {
    spec: &'a WorkloadSpec,
    policy: DispatchPolicy,
    exec_seed: u64,
    horizon: f64,
}

/// One dispatch shard's persistent state: lanes, the eligibility
/// sweep, epoch-stamped dedup marks and the reusable per-job RNG. A
/// shard's state evolves only under its own lock, driven by its own
/// jobs in arrival order, so the outcome is independent of which
/// worker ran which batch.
struct ShardState {
    lanes: Lanes,
    /// Lane indices ordered by window entry / exit.
    activation: Vec<u32>,
    removal: Vec<u32>,
    next_act: usize,
    next_rem: usize,
    /// Swap-removal eligible set (like the popsim alive partition).
    eligible: Vec<u32>,
    pos: Vec<u32>,
    /// Epoch stamps replacing the O(d²) `contains` dedup scans:
    /// `cand_mark[li] == replica_epoch` ⇔ sampled for this replica,
    /// `chosen_mark[li] == job_epoch` ⇔ chosen by an earlier replica
    /// of this job.
    cand_mark: Vec<u64>,
    chosen_mark: Vec<u64>,
    replica_epoch: u64,
    job_epoch: u64,
    candidates: Vec<u32>,
    /// One RNG reseeded in place per job — the substream bytes are
    /// identical to constructing `seeded_substream(seed, id)` fresh.
    rng: StdRng,
    out: ShardOutcome,
}

const GONE: u32 = u32::MAX;

impl ShardState {
    fn build(
        engine: &EngineReport,
        spec: &WorkloadSpec,
        profiles: &[resmodel_allocsim::AppProfile],
        host_ids: &[u64],
    ) -> Self {
        let start_days = spec.start.days();
        let horizon = spec.horizon_hours;
        let mut lanes = Lanes::new(spec.families.len());
        let mut on_buf: Vec<(f64, f64)> = Vec::new();
        for &id in host_ids {
            let Some(host) = engine.fleet.host(id) else {
                continue;
            };
            let c_h = (host.created.days() - start_days) * 24.0;
            let d_h = (host.death.days() - start_days) * 24.0;
            let a0 = c_h.max(0.0);
            let a1 = d_h.min(horizon);
            if a1 <= a0 {
                continue;
            }
            on_buf.clear();
            match engine.availability_schedule(id, horizon) {
                Some(schedule) => on_buf.extend(schedule.on_intervals_between(a0, a1)),
                // No availability model: the host is ON for its whole
                // eligible window.
                None => on_buf.push((a0, a1)),
            }
            if on_buf.is_empty() {
                continue;
            }
            // Resources in force when the host enters the window
            // (hardware refreshes inside the window keep the
            // entry-rate — dispatch models capacity, not mid-run
            // re-benchmarks).
            let at = if c_h > 0.0 { host.created } else { spec.start };
            let res = *host.resources_at(at).unwrap_or(&host.resources);
            // Whetstone MIPS ≈ Mflops: cores · MIPS · 3600 s/h / 1000
            // → GFLOP-equivalents per ON-hour.
            let speed = (f64::from(res.cores.max(1)) * res.whetstone_mips * 3.6).max(1e-6);
            lanes.push_lane(
                a0,
                speed,
                host.gpu.is_some(),
                profiles.iter().map(|p| utility(p, &res)),
                &on_buf,
            );
        }

        let mut out = ShardOutcome::empty(spec.families.len());
        out.hosts = lanes.len();
        out.total_on_hours = (0..lanes.len()).map(|li| lanes.total_on(li)).sum();

        // `activation[k]` / `removal[k]` order lanes by window
        // entry/exit; the eligible set uses swap-removal, so
        // membership order is a pure function of the job sequence.
        #[allow(clippy::cast_possible_truncation)]
        let mut activation: Vec<u32> = (0..lanes.len() as u32).collect();
        activation.sort_by(|&x, &y| lanes.a0[x as usize].total_cmp(&lanes.a0[y as usize]));
        #[allow(clippy::cast_possible_truncation)]
        let mut removal: Vec<u32> = (0..lanes.len() as u32).collect();
        removal.sort_by(|&x, &y| lanes.exit[x as usize].total_cmp(&lanes.exit[y as usize]));

        let n = lanes.len();
        ShardState {
            lanes,
            activation,
            removal,
            next_act: 0,
            next_rem: 0,
            eligible: Vec::with_capacity(n),
            pos: vec![GONE; n],
            cand_mark: vec![0; n],
            chosen_mark: vec![0; n],
            replica_epoch: 0,
            job_epoch: 0,
            candidates: Vec::with_capacity(spec.candidates),
            rng: StdRng::seed_from_u64(0),
            out,
        }
    }

    /// Run one arrival-ordered batch of this shard's jobs.
    fn run_batch(&mut self, ctx: &BatchCtx<'_>, batch: &[JobRec]) {
        let n_fam = self.lanes.n_fam;
        for job in batch {
            let t = job.arrival;

            // Advance the sweep: admit lanes whose window has opened,
            // retire lanes whose last ON session has ended.
            while self.next_act < self.activation.len()
                && self.lanes.a0[self.activation[self.next_act] as usize] <= t
            {
                let li = self.activation[self.next_act];
                #[allow(clippy::cast_possible_truncation)]
                {
                    self.pos[li as usize] = self.eligible.len() as u32;
                }
                self.eligible.push(li);
                self.next_act += 1;
            }
            while self.next_rem < self.removal.len()
                && self.lanes.exit[self.removal[self.next_rem] as usize] <= t
            {
                let li = self.removal[self.next_rem];
                self.next_rem += 1;
                let p = self.pos[li as usize];
                if p == GONE {
                    continue; // exited before it ever activated
                }
                self.eligible.swap_remove(p as usize);
                if let Some(&moved) = self.eligible.get(p as usize) {
                    self.pos[moved as usize] = p;
                }
                self.pos[li as usize] = GONE;
            }

            let fam_idx = job.family as usize;
            let fam = &ctx.spec.families[fam_idx];
            let facc = &mut self.out.families[fam_idx];
            facc.jobs += 1;
            facc.size_sum += job.size;
            let deadline = fam.deadline_hours;
            if deadline.is_some() {
                self.out.deadline_jobs += 1;
            }

            // --- Place every replica ---
            self.rng
                .reseed_from_u64(substream(ctx.exec_seed, u64::from(job.id)));
            let mut completion: Option<f64> = None;
            self.job_epoch += 1;
            let mut chosen_count = 0usize;
            for _ in 0..fam.replication {
                // Power-of-d-choices: sample distinct candidates from
                // the eligible set (also distinct from this job's
                // earlier replicas); a bounded retry keeps the draw
                // count finite on tiny shards.
                self.candidates.clear();
                self.replica_epoch += 1;
                if !self.eligible.is_empty() {
                    let want = ctx
                        .spec
                        .candidates
                        .min(self.eligible.len().saturating_sub(chosen_count));
                    sample_candidates(
                        &mut self.rng,
                        &self.eligible,
                        want,
                        4 * ctx.spec.candidates,
                        self.replica_epoch,
                        &mut self.cand_mark,
                        self.job_epoch,
                        &self.chosen_mark,
                        &mut self.candidates,
                        &mut self.out.candidate_draws,
                    );
                }
                self.out.candidates_scored += self.candidates.len() as u64;
                let Some(best) = pick(
                    &mut self.lanes,
                    ctx.policy,
                    &self.candidates,
                    t,
                    job.size,
                    fam_idx,
                    fam.wants_gpu,
                    ctx.horizon,
                ) else {
                    continue;
                };
                let li = best as usize;
                self.chosen_mark[li] = self.job_epoch;
                chosen_count += 1;
                self.out.replicas += 1;
                self.out.predicted_utility += self.lanes.util[li * n_fam + fam_idx];
                let work = job.size / self.lanes.hot[li].speed;
                if let Some(done) = self.lanes.commit(li, t, work, ctx.spec.checkpointing) {
                    self.out.realized_utility += self.lanes.util[li * n_fam + fam_idx];
                    completion = Some(completion.map_or(done, |c: f64| c.min(done)));
                }
            }

            // --- Score the job ---
            match completion {
                Some(done) => {
                    self.out.completed += 1;
                    facc.completed += 1;
                    self.out.latency_hist.record(done - t);
                    self.out.latency_sum += done - t;
                    facc.latency_sum += done - t;
                    self.out.makespan = self.out.makespan.max(done);
                    if let Some(d) = deadline {
                        if done - t > d {
                            self.out.deadline_missed += 1;
                            facc.deadline_missed += 1;
                        }
                    }
                }
                None => {
                    if chosen_count > 0 {
                        self.out.failed += 1;
                        facc.failed += 1;
                    } else {
                        self.out.unassigned += 1;
                        facc.unassigned += 1;
                    }
                    if deadline.is_some() {
                        self.out.deadline_missed += 1;
                        facc.deadline_missed += 1;
                    }
                }
            }
        }
    }
}

/// The bounded power-of-d retry loop. The accept/reject decisions —
/// and therefore `draws` accounting — are identical to the old
/// `Vec::contains` dedup: epoch stamps only change the membership
/// test's cost, never its answer, and no RNG draw is skipped.
#[allow(clippy::too_many_arguments)]
#[inline]
fn sample_candidates(
    rng: &mut StdRng,
    eligible: &[u32],
    want: usize,
    max_draws: usize,
    replica_epoch: u64,
    cand_mark: &mut [u64],
    job_epoch: u64,
    chosen_mark: &[u64],
    candidates: &mut Vec<u32>,
    draws: &mut u64,
) {
    for _ in 0..max_draws {
        if candidates.len() >= want {
            break;
        }
        *draws += 1;
        let li = eligible[rng.random_range(0..eligible.len())];
        let slot = li as usize;
        if cand_mark[slot] != replica_epoch && chosen_mark[slot] != job_epoch {
            cand_mark[slot] = replica_epoch;
            candidates.push(li);
        }
    }
}

/// Pick the best candidate under `policy`. Ties resolve to the
/// earliest candidate in sample order, which is itself deterministic.
/// (Scoring advances the lanes' monotone sweep cursors, hence `&mut`
/// — the returned values are unchanged by the cursors.)
#[allow(clippy::too_many_arguments)]
fn pick(
    lanes: &mut Lanes,
    policy: DispatchPolicy,
    candidates: &[u32],
    t: f64,
    size: f64,
    fam: usize,
    wants_gpu: bool,
    horizon: f64,
) -> Option<u32> {
    if candidates.len() <= 1 || policy == DispatchPolicy::Random {
        return candidates.first().copied();
    }
    // Strictly-greater comparison keeps the first of score ties, so the
    // winner is the earliest candidate in (deterministic) sample order.
    // The per-policy loops hoist the policy branch out of the scoring
    // hot path.
    let mut best = candidates[0];
    match policy {
        DispatchPolicy::Random => {}
        DispatchPolicy::GreedyUtility => {
            let mut best_score = f64::NEG_INFINITY;
            for &c in candidates {
                let li = c as usize;
                let s = lanes.util[li * lanes.n_fam + fam] / (1.0 + lanes.backlog_at(li, t));
                if s > best_score {
                    best = c;
                    best_score = s;
                }
            }
        }
        DispatchPolicy::EarliestFinish => {
            let mut best_finish = f64::INFINITY;
            for &c in candidates {
                let li = c as usize;
                let f = lanes.estimate_finish(li, t, size / lanes.hot[li].speed, horizon);
                if f < best_finish {
                    best = c;
                    best_finish = f;
                }
            }
        }
        DispatchPolicy::TierAffinity => {
            let mut best_score = f64::NEG_INFINITY;
            for &c in candidates {
                let li = c as usize;
                let base = lanes.hot[li].speed / (1.0 + lanes.backlog_at(li, t));
                let s = if lanes.hot[li].gpu == wants_gpu {
                    1e12 + base
                } else {
                    base
                };
                if s > best_score {
                    best = c;
                    best_score = s;
                }
            }
        }
    }
    Some(best)
}

// ---------------------------------------------------------------------------
// Segment execution with work stealing
// ---------------------------------------------------------------------------

/// Dispatch one segment: `workers` claim shard batches from a shared
/// queue. A claim outside the worker's round-robin share is a steal —
/// an idle worker taking load off a busy one. Which worker runs a
/// batch never matters: each shard's state advances under its own
/// lock, in arrival order, exactly once per segment.
fn process_segment(
    states: &[Mutex<ShardState>],
    bufs: &[Vec<JobRec>],
    nonempty: &[u32],
    ctx: &BatchCtx<'_>,
    workers: usize,
    steals: &AtomicU64,
) {
    let run = |si: usize| {
        states[si]
            .lock()
            .unwrap_or_else(|_| unreachable!("shard workers do not panic"))
            .run_batch(ctx, &bufs[si]);
    };
    if workers <= 1 {
        for &si in nonempty {
            run(si as usize);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let claim_loop = |w: usize| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= nonempty.len() {
            break;
        }
        if i % workers != w {
            steals.fetch_add(1, Ordering::Relaxed);
        }
        run(nonempty[i] as usize);
    };
    std::thread::scope(|scope| {
        for w in 1..workers {
            let claim_loop = &claim_loop;
            scope.spawn(move || claim_loop(w));
        }
        claim_loop(0);
    });
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use resmodel_popsim::{engine, ArrivalLaw, Scenario};

    fn tiny_fleet(seed: u64) -> EngineReport {
        let mut scenario = Scenario::steady_state(seed);
        scenario.max_hosts = 600;
        scenario.shard_count = 8;
        scenario.arrivals = ArrivalLaw::Exponential {
            base_per_day: 6.0,
            growth_per_year: 0.18,
        };
        engine::run(&scenario).unwrap()
    }

    fn tiny_workload() -> WorkloadSpec {
        let mut spec = WorkloadSpec::preset("mixed").unwrap();
        spec.shard_count = 8;
        spec.horizon_hours = 240.0;
        spec = spec.with_job_budget(800);
        spec
    }

    #[test]
    fn job_generation_is_deterministic_and_sorted() {
        let spec = tiny_workload();
        let a = generate_jobs(&spec);
        let b = generate_jobs(&spec);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.size, y.size);
            assert_eq!(x.family, y.family);
        }
        for w in a.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        // Poisson totals land near the budget.
        assert!(
            (a.len() as f64 - 800.0).abs() < 160.0,
            "generated {} jobs",
            a.len()
        );
        // All four families are represented.
        let fams: std::collections::HashSet<u32> = a.iter().map(|j| j.family).collect();
        assert_eq!(fams.len(), spec.families.len());
    }

    /// The streaming merge must reproduce the old materialize-and-sort
    /// generator byte for byte — the reference implementation below is
    /// that old generator, verbatim.
    #[test]
    fn streaming_merge_matches_materialized_stable_sort() {
        fn reference(spec: &WorkloadSpec) -> Vec<Job> {
            let mut jobs = Vec::new();
            for (fi, fam) in spec.families.iter().enumerate() {
                let mut rng = seeded_substream(spec.seed ^ FAMILY_SALT, fi as u64);
                let sizes = (fam.size_sigma > 0.0)
                    .then(|| LogNormal::new(fam.size_gflop.ln(), fam.size_sigma))
                    .transpose()
                    .ok()
                    .flatten();
                let mut t = 0.0;
                let mut count = 0usize;
                loop {
                    let rate = fam.arrivals.rate(t).max(1e-9);
                    let u: f64 = rng.random::<f64>();
                    t += -(1.0 - u).ln() / rate;
                    if t > spec.horizon_hours {
                        break;
                    }
                    if fam.max_jobs > 0 && count >= fam.max_jobs {
                        break;
                    }
                    let size = match &sizes {
                        Some(d) => d.sample(&mut rng),
                        None => fam.size_gflop,
                    };
                    jobs.push(Job {
                        arrival: t,
                        size,
                        family: fi as u32,
                    });
                    count += 1;
                }
            }
            jobs.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
            jobs
        }
        for preset in WorkloadSpec::PRESETS {
            for (seed, budget) in [(20110620, 2_000), (7, 431), (999, 0)] {
                let mut spec = WorkloadSpec::preset(preset).unwrap();
                spec.seed = seed;
                if budget > 0 {
                    spec = spec.with_job_budget(budget);
                }
                let streamed = generate_jobs(&spec);
                let sorted = reference(&spec);
                assert_eq!(streamed.len(), sorted.len(), "{preset} seed {seed}");
                for (i, (a, b)) in streamed.iter().zip(&sorted).enumerate() {
                    assert!(
                        a.arrival.to_bits() == b.arrival.to_bits()
                            && a.size.to_bits() == b.size.to_bits()
                            && a.family == b.family,
                        "{preset} seed {seed}: job {i} differs"
                    );
                }
            }
        }
    }

    /// Satellite contract: the epoch-mark dedup must draw exactly as
    /// often as the old `Vec::contains` dedup — same candidates, same
    /// `candidate_draws` — on a shared RNG stream (fixed seed).
    #[test]
    fn epoch_mark_dedup_matches_contains_dedup_draw_for_draw() {
        #[allow(clippy::too_many_arguments)]
        fn reference_sample(
            rng: &mut StdRng,
            eligible: &[u32],
            want: usize,
            max_draws: usize,
            chosen: &[u32],
            candidates: &mut Vec<u32>,
            draws: &mut u64,
        ) {
            for _ in 0..max_draws {
                if candidates.len() >= want {
                    break;
                }
                *draws += 1;
                let li = eligible[rng.random_range(0..eligible.len())];
                if !candidates.contains(&li) && !chosen.contains(&li) {
                    candidates.push(li);
                }
            }
        }

        let d = 4usize;
        let lanes = 40usize;
        let mut rng_new = StdRng::seed_from_u64(20110620);
        let mut rng_ref = rng_new.clone();
        let mut cand_mark = vec![0u64; lanes];
        let mut chosen_mark = vec![0u64; lanes];
        let (mut replica_epoch, mut job_epoch) = (0u64, 0u64);
        let (mut draws_new, mut draws_ref) = (0u64, 0u64);
        let mut seq = StdRng::seed_from_u64(42);
        for job in 0..500u64 {
            // Shrink the eligible set over time to force the bounded
            // retry loop into its degenerate duplicate-heavy regime.
            #[allow(clippy::cast_possible_truncation)]
            let elig_len = (lanes as u64 - (job * lanes as u64) / 600).max(2) as usize;
            let eligible: Vec<u32> = (0..elig_len as u32).collect();
            job_epoch += 1;
            let mut chosen: Vec<u32> = Vec::new();
            let replication = 1 + (seq.random_range(0..3u64) as usize);
            for _ in 0..replication {
                let want = d.min(eligible.len().saturating_sub(chosen.len()));
                let mut cands_new = Vec::new();
                let mut cands_ref = Vec::new();
                replica_epoch += 1;
                sample_candidates(
                    &mut rng_new,
                    &eligible,
                    want,
                    4 * d,
                    replica_epoch,
                    &mut cand_mark,
                    job_epoch,
                    &chosen_mark,
                    &mut cands_new,
                    &mut draws_new,
                );
                reference_sample(
                    &mut rng_ref,
                    &eligible,
                    want,
                    4 * d,
                    &chosen,
                    &mut cands_ref,
                    &mut draws_ref,
                );
                assert_eq!(cands_new, cands_ref, "job {job}");
                assert_eq!(draws_new, draws_ref, "job {job}");
                // Both sides "choose" the first candidate.
                if let Some(&best) = cands_new.first() {
                    chosen_mark[best as usize] = job_epoch;
                    chosen.push(best);
                }
            }
        }
        assert!(draws_new > 0);
        assert_eq!(draws_new, draws_ref);
    }

    #[test]
    fn dispatch_produces_consistent_counts() {
        let fleet = tiny_fleet(3);
        let spec = tiny_workload();
        for policy in DispatchPolicy::ALL {
            let report = dispatch(&fleet, &spec, policy).unwrap();
            let t = &report.totals;
            assert_eq!(t.jobs, t.completed + t.failed + t.unassigned, "{policy}");
            assert!(t.hosts > 0, "{policy}: no eligible hosts");
            assert!(t.completed > 0, "{policy}: nothing completed");
            assert!(t.replicas >= t.jobs - t.unassigned, "{policy}");
            assert!(t.makespan_hours <= spec.horizon_hours, "{policy}");
            assert!(
                t.host_utilization >= 0.0 && t.host_utilization <= 1.0 + 1e-9,
                "{policy}: utilization {}",
                t.host_utilization
            );
            assert!(t.realized_utility <= t.predicted_utility + 1e-9, "{policy}");
            assert!(
                t.utility_ratio > 0.0 && t.utility_ratio <= 1.0 + 1e-9,
                "{policy}"
            );
            let fam_jobs: usize = report.families.iter().map(|f| f.jobs).sum();
            assert_eq!(fam_jobs, t.jobs, "{policy}");
            let fam_missed: usize = report.families.iter().map(|f| f.deadline_missed).sum();
            assert_eq!(fam_missed, t.deadline_missed, "{policy}");
        }
    }

    #[test]
    fn observed_dispatch_is_identical_and_records_latency_histogram() {
        let fleet = tiny_fleet(3);
        let spec = tiny_workload();
        let policy = DispatchPolicy::EarliestFinish;
        let mut plain = dispatch(&fleet, &spec, policy).unwrap();
        let obs = Collector::new();
        let mut observed = dispatch_observed(&fleet, &spec, policy, &obs).unwrap();
        // Instrumentation must not perturb placement.
        plain.zero_timings();
        observed.zero_timings();
        assert_eq!(
            plain.to_json_pretty().unwrap(),
            observed.to_json_pretty().unwrap()
        );
        let m = obs.snapshot();
        assert_eq!(m.counter("sched.jobs"), Some(plain.totals.jobs as u64));
        assert_eq!(
            m.counter("sched.jobs_completed"),
            Some(plain.totals.completed as u64)
        );
        assert!(m.counter("sched.candidate_draws").unwrap() > 0);
        assert!(m.counter("sched.segments").unwrap() > 0);
        // Steal counts exist (possibly zero) and are quarantined from
        // the deterministic fingerprint like wall clock.
        assert!(m.counter("sched.steals").is_some());
        assert!(resmodel_obs::is_wall_clock_key("sched.steals"));
        let (counters, _) = m.deterministic_fingerprint();
        assert!(!counters.iter().any(|(k, _)| k == "sched.steals"));
        assert!(counters.iter().any(|(k, _)| k == "sched.segments"));
        let depth = m.histogram("sched.segment_queue_depth").unwrap();
        assert!(depth.count > 0);
        let hist = m
            .histogram("sched.placement_latency_hours.earliest-finish")
            .unwrap();
        assert_eq!(hist.count, plain.totals.completed as u64);
        // Latency histogram records sim-hours, bounded by 2× horizon +
        // overload overflow never being *completed*; all completions
        // land inside the window.
        assert!(hist.max <= spec.horizon_hours);
        assert_eq!(m.spans[0].path, "dispatch");
    }

    #[test]
    fn greedy_utility_beats_random_on_realized_utility_per_replica() {
        let fleet = tiny_fleet(5);
        let spec = tiny_workload();
        let random = dispatch(&fleet, &spec, DispatchPolicy::Random).unwrap();
        let greedy = dispatch(&fleet, &spec, DispatchPolicy::GreedyUtility).unwrap();
        let per_replica =
            |r: &DispatchReport| r.totals.predicted_utility / r.totals.replicas as f64;
        assert!(
            per_replica(&greedy) > per_replica(&random),
            "greedy {} vs random {}",
            per_replica(&greedy),
            per_replica(&random)
        );
    }

    #[test]
    fn earliest_finish_cuts_deadline_misses() {
        let fleet = tiny_fleet(7);
        let mut spec = WorkloadSpec::preset("deadline").unwrap();
        spec.shard_count = 8;
        spec.horizon_hours = 240.0;
        spec = spec.with_job_budget(900);
        let random = dispatch(&fleet, &spec, DispatchPolicy::Random).unwrap();
        let ef = dispatch(&fleet, &spec, DispatchPolicy::EarliestFinish).unwrap();
        assert!(
            ef.totals.deadline_miss_rate <= random.totals.deadline_miss_rate,
            "earliest-finish {} vs random {}",
            ef.totals.deadline_miss_rate,
            random.totals.deadline_miss_rate
        );
    }

    #[test]
    fn invalid_workload_names_the_grid_point() {
        let fleet = tiny_fleet(1);
        let mut spec = tiny_workload();
        spec.families.clear();
        let err = dispatch(&fleet, &spec, DispatchPolicy::Random).unwrap_err();
        match err {
            ResmodelError::Dispatch { point, .. } => {
                assert_eq!(point, "random/mixed");
            }
            other => panic!("expected a dispatch error, got {other}"),
        }
    }

    #[test]
    fn reports_round_trip_and_zero_timings() {
        let fleet = tiny_fleet(2);
        let spec = tiny_workload();
        let report = dispatch(&fleet, &spec, DispatchPolicy::TierAffinity).unwrap();
        let mut a = report.clone();
        let mut b = report;
        a.zero_timings();
        b.zero_timings();
        let json = a.to_json_pretty().unwrap();
        assert_eq!(json, b.to_json_pretty().unwrap());
        let back = DispatchReport::from_json(&json).unwrap();
        assert_eq!(a, back);
    }

    /// Single test lane with the given ON intervals.
    fn test_lanes(on: &[(f64, f64)]) -> Lanes {
        let mut lanes = Lanes::new(0);
        lanes.push_lane(0.0, 1.0, false, std::iter::empty(), on);
        lanes
    }

    #[test]
    fn lane_time_conversions_are_inverse() {
        let lanes = test_lanes(&[(1.0, 3.0), (5.0, 6.0), (8.0, 12.0)]);
        assert_eq!(lanes.total_on(0), 7.0);
        assert_eq!(lanes.on_elapsed_cold(0, 0.5), 0.0);
        assert_eq!(lanes.on_elapsed_cold(0, 2.0), 1.0);
        assert_eq!(lanes.on_elapsed_cold(0, 4.0), 2.0);
        assert_eq!(lanes.on_elapsed_cold(0, 100.0), 7.0);
        assert_eq!(lanes.wall_at_on_from(0, 1.0, 0).0, 2.0);
        assert_eq!(lanes.wall_at_on_from(0, 2.0, 0).0, 3.0);
        assert_eq!(lanes.wall_at_on_from(0, 2.5, 0).0, 5.5);
        assert_eq!(lanes.wall_at_on_from(0, 7.0, 0).0, 12.0);
        for w in [0.5, 1.0, 2.0, 2.5, 3.0, 6.9] {
            let t = lanes.wall_at_on_from(0, w, 0).0;
            assert!((lanes.on_elapsed_cold(0, t) - w).abs() < 1e-12, "w={w}");
        }
    }

    /// The monotone sweep cursor must agree with the cold binary
    /// search at every step of a nondecreasing clock.
    #[test]
    fn sweep_cursor_matches_cold_search() {
        let mut lanes = test_lanes(&[(1.0, 3.0), (5.0, 6.0), (8.0, 12.0), (20.0, 21.5)]);
        for t in [
            0.0, 0.5, 1.0, 2.9, 3.0, 4.2, 5.0, 5.0, 7.9, 11.0, 12.0, 19.0, 20.5, 30.0,
        ] {
            assert_eq!(
                lanes.on_elapsed_sweep(0, t).to_bits(),
                lanes.on_elapsed_cold(0, t).to_bits(),
                "t={t}"
            );
        }
    }

    /// Galloped prefix search must agree with `partition_point` for
    /// every valid starting hint.
    #[test]
    fn galloped_prefix_search_matches_partition_point() {
        let lanes = test_lanes(&[(1.0, 3.0), (5.0, 6.0), (8.0, 12.0), (20.0, 21.5)]);
        let prefix = &lanes.prefix;
        for w in [0.0, 0.5, 2.0, 3.0, 3.5, 6.99, 7.0, 8.4, 8.5, 9.0] {
            let expect = prefix.partition_point(|&p| p < w);
            for lo in 0..=expect {
                assert_eq!(lanes.prefix_first_ge(0, w, lo), expect, "w={w} lo={lo}");
            }
        }
    }

    #[test]
    fn checkpointing_commit_spans_gaps_and_restart_needs_one_session() {
        // 3h of work with checkpointing: 2h in session 1, 1h into
        // session 2 → completes at 11.
        let mut lanes = test_lanes(&[(0.0, 2.0), (10.0, 13.0)]);
        assert_eq!(lanes.commit(0, 0.0, 3.0, true), Some(11.0));
        assert_eq!(lanes.busy_on[0], 3.0);
        // A second job queues behind it (FIFO): 1h more → 12.
        assert_eq!(lanes.commit(0, 0.0, 1.0, true), Some(12.0));
        // Overcommit fails and consumes the tail.
        assert_eq!(lanes.commit(0, 0.0, 5.0, true), None);
        assert_eq!(lanes.hot[0].cursor_on, 5.0);
        // Without checkpointing the same 3h job must wait for the 3h
        // session: restarts burn session 1 entirely.
        let mut lanes = test_lanes(&[(0.0, 2.0), (10.0, 13.0)]);
        assert_eq!(lanes.commit(0, 0.0, 3.0, false), Some(13.0));
        assert_eq!(lanes.busy_on[0], 5.0, "burned session + work");
        // A 4h job can never fit any session.
        let mut lanes = test_lanes(&[(0.0, 2.0), (10.0, 13.0)]);
        assert_eq!(lanes.commit(0, 0.0, 4.0, false), None);
    }
}
