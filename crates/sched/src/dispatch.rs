//! The sharded, event-driven dispatch engine.
//!
//! ## Determinism contract
//!
//! Mirroring the popsim engine one layer up:
//!
//! * Job generation is a serial function of `(spec.seed, family index)`
//!   — each family draws its arrival stream and sizes from a dedicated
//!   substream, and the merged job list is sorted by arrival time with
//!   a stable family-order tie-break.
//! * Job `j` routes to dispatch shard
//!   `substream(seed ^ ROUTE, j) % shard_count` and host `h` to shard
//!   `h.id % shard_count` — pure functions of the spec, never of the
//!   machine.
//! * Shards simulate independently on the rayon pool and their partial
//!   statistics merge in shard order, so a [`DispatchReport`] is
//!   byte-identical (after [`DispatchReport::zero_timings`]) at any
//!   thread count.

use crate::policy::DispatchPolicy;
use crate::report::{DispatchReport, DispatchTotals, FamilyDispatchStats};
use crate::workload::WorkloadSpec;
use rand::RngExt;
use rayon::prelude::*;
use resmodel_allocsim::utility;
use resmodel_error::ResmodelError;
use resmodel_obs::{Collector, Histogram};
use resmodel_popsim::EngineReport;
use resmodel_stats::distributions::LogNormal;
use resmodel_stats::rng::{seeded_substream, substream};
use resmodel_stats::Distribution;
use std::time::Instant;

/// Substream salt for per-family job generation (xor-ed with the
/// family index).
const FAMILY_SALT: u64 = 0xD15A_7C40_0000_0001;
/// Substream salt for job → shard routing.
const ROUTE_SALT: u64 = 0xD15A_7C40_0000_0002;
/// Substream salt for per-job candidate sampling.
const EXEC_SALT: u64 = 0xD15A_7C40_0000_0003;

/// One generated job. Its global index in arrival order is its id.
#[derive(Debug, Clone, Copy)]
struct Job {
    /// Arrival, hours from window start.
    arrival: f64,
    /// Size, GFLOP-equivalents.
    size: f64,
    /// Family index in the spec.
    family: u32,
}

/// Dispatch `spec`'s workload onto the fleet of `engine` under
/// `policy`.
///
/// Hosts live and die on the popsim timeline; when the scenario models
/// availability, progress only accrues during ON sessions of the
/// host's deterministic [`resmodel_avail::Schedule`] (checkpoint/resume
/// across OFF gaps, or restart, per `spec.checkpointing`).
///
/// # Errors
///
/// Returns a [`ResmodelError::Dispatch`] naming the `policy/workload`
/// grid point, wrapping the spec's validation error.
pub fn dispatch(
    engine: &EngineReport,
    spec: &WorkloadSpec,
    policy: DispatchPolicy,
) -> Result<DispatchReport, ResmodelError> {
    dispatch_observed(engine, spec, policy, &Collector::disabled())
}

/// [`dispatch`] with metrics: job/replica counters, candidate-sampling
/// counts, and a per-policy placement-latency histogram (sim-hours, so
/// it is thread-count invariant) flow into `obs` out-of-band. The
/// returned report is byte-identical to [`dispatch`]'s.
///
/// # Errors
///
/// Same conditions as [`dispatch`].
pub fn dispatch_observed(
    engine: &EngineReport,
    spec: &WorkloadSpec,
    policy: DispatchPolicy,
    obs: &Collector,
) -> Result<DispatchReport, ResmodelError> {
    let _span = obs.span("dispatch");
    let point = || format!("{}/{}", policy.label(), spec.name);
    spec.validate()
        .map_err(|e| ResmodelError::dispatch(point(), e))?;

    let t_run = Instant::now();
    let t0 = Instant::now();
    let jobs = generate_jobs(spec);
    if jobs.len() > u32::MAX as usize {
        return Err(ResmodelError::dispatch(
            point(),
            ResmodelError::config("workload", "more than u32::MAX jobs generated"),
        ));
    }
    let generate_ms = ms_since(t0);

    let t0 = Instant::now();
    let shard_count = spec.shard_count;

    // Route jobs and hosts onto the dispatch shards.
    let mut shards: Vec<(Vec<u32>, Vec<u64>)> = vec![(Vec::new(), Vec::new()); shard_count];
    for id in 0..jobs.len() {
        let s = (substream(spec.seed ^ ROUTE_SALT, id as u64) % shard_count as u64) as usize;
        shards[s].0.push(id as u32);
    }
    for host in engine.fleet.iter() {
        shards[(host.id % shard_count as u64) as usize]
            .1
            .push(host.id);
    }
    for (_, hosts) in &mut shards {
        hosts.sort_unstable();
    }

    // Shards are independent: simulate on however many threads rayon
    // offers; outcomes are collected (and merged) in shard order.
    let outcomes: Vec<ShardOutcome> = shards
        .par_iter()
        .map(|(job_ids, host_ids)| run_shard(engine, spec, policy, &jobs, job_ids, host_ids))
        .collect();
    let dispatch_ms = ms_since(t0);

    // Deterministic merge in shard order.
    let n_fam = spec.families.len();
    let mut m = ShardOutcome::empty(n_fam);
    for o in &outcomes {
        m.hosts += o.hosts;
        m.total_on_hours += o.total_on_hours;
        m.busy_on_hours += o.busy_on_hours;
        m.replicas += o.replicas;
        m.completed += o.completed;
        m.failed += o.failed;
        m.unassigned += o.unassigned;
        m.deadline_jobs += o.deadline_jobs;
        m.deadline_missed += o.deadline_missed;
        m.latency_sum += o.latency_sum;
        m.makespan = m.makespan.max(o.makespan);
        m.predicted_utility += o.predicted_utility;
        m.realized_utility += o.realized_utility;
        m.latency_hist.merge(&o.latency_hist);
        m.candidate_draws += o.candidate_draws;
        m.candidates_scored += o.candidates_scored;
        for (a, b) in m.families.iter_mut().zip(&o.families) {
            a.jobs += b.jobs;
            a.completed += b.completed;
            a.failed += b.failed;
            a.unassigned += b.unassigned;
            a.deadline_missed += b.deadline_missed;
            a.latency_sum += b.latency_sum;
            a.size_sum += b.size_sum;
        }
    }

    let mean = |sum: f64, n: usize| if n == 0 { 0.0 } else { sum / n as f64 };
    let families = spec
        .families
        .iter()
        .zip(&m.families)
        .map(|(f, a)| FamilyDispatchStats {
            name: f.name.clone(),
            jobs: a.jobs,
            completed: a.completed,
            failed: a.failed,
            unassigned: a.unassigned,
            deadline_missed: a.deadline_missed,
            mean_latency_hours: mean(a.latency_sum, a.completed),
            mean_size_gflop: mean(a.size_sum, a.jobs),
        })
        .collect();

    let totals = DispatchTotals {
        hosts: m.hosts,
        jobs: jobs.len(),
        replicas: m.replicas,
        completed: m.completed,
        failed: m.failed,
        unassigned: m.unassigned,
        deadline_missed: m.deadline_missed,
        deadline_miss_rate: mean(m.deadline_missed as f64, m.deadline_jobs),
        makespan_hours: m.makespan,
        mean_latency_hours: mean(m.latency_sum, m.completed),
        jobs_per_sim_hour: m.completed as f64 / spec.horizon_hours,
        host_utilization: if m.total_on_hours > 0.0 {
            m.busy_on_hours / m.total_on_hours
        } else {
            0.0
        },
        predicted_utility: m.predicted_utility,
        realized_utility: m.realized_utility,
        utility_ratio: if m.predicted_utility > 0.0 {
            m.realized_utility / m.predicted_utility
        } else {
            0.0
        },
    };

    let wall_ms = ms_since(t_run);
    if obs.is_enabled() {
        obs.add("sched.dispatches", 1);
        obs.add("sched.jobs", jobs.len() as u64);
        obs.add("sched.replicas", m.replicas as u64);
        obs.add("sched.jobs_completed", m.completed as u64);
        obs.add("sched.jobs_failed", m.failed as u64);
        obs.add("sched.jobs_unassigned", m.unassigned as u64);
        obs.add("sched.candidate_draws", m.candidate_draws);
        obs.add("sched.candidates_scored", m.candidates_scored);
        obs.merge_histogram(
            &format!("sched.placement_latency_hours.{}", policy.label()),
            &m.latency_hist,
        );
        if wall_ms > 0.0 {
            #[allow(clippy::cast_precision_loss)]
            obs.set_gauge("sched.jobs_per_sec", jobs.len() as f64 / (wall_ms / 1e3));
        }
    }
    Ok(DispatchReport {
        workload: spec.clone(),
        policy,
        totals,
        families,
        generate_ms,
        dispatch_ms,
        wall_ms,
        jobs_per_sec: if wall_ms > 0.0 {
            jobs.len() as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
    })
}

fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

/// Generate the window's job list: per-family thinned Poisson arrival
/// streams with log-normal sizes, merged into global arrival order
/// (stable sort, so equal-time jobs keep family-major order).
fn generate_jobs(spec: &WorkloadSpec) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (fi, fam) in spec.families.iter().enumerate() {
        let mut rng = seeded_substream(spec.seed ^ FAMILY_SALT, fi as u64);
        // Median-anchored log-normal sizes: ln-median = ln(size_gflop).
        let sizes = (fam.size_sigma > 0.0)
            .then(|| LogNormal::new(fam.size_gflop.ln(), fam.size_sigma))
            .transpose()
            .ok()
            .flatten();
        let mut t = 0.0;
        let mut count = 0usize;
        loop {
            // First-order thinning: exponential gap at the current
            // rate — exact for Poisson, the popsim arrival scheme for
            // time-varying shapes.
            let rate = fam.arrivals.rate(t).max(1e-9);
            let u: f64 = rng.random::<f64>();
            t += -(1.0 - u).ln() / rate;
            if t > spec.horizon_hours {
                break;
            }
            if fam.max_jobs > 0 && count >= fam.max_jobs {
                break;
            }
            let size = match &sizes {
                Some(d) => d.sample(&mut rng),
                None => fam.size_gflop,
            };
            jobs.push(Job {
                arrival: t,
                size,
                family: fi as u32,
            });
            count += 1;
        }
    }
    jobs.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
    jobs
}

/// One host's dispatch lane: its eligible window, ON sessions, service
/// rate, per-family valuations and committed work.
struct Lane {
    /// Eligibility start (alive ∩ window), hours.
    a0: f64,
    /// ON intervals clipped to the eligible window.
    on: Vec<(f64, f64)>,
    /// `prefix[i]` = ON-hours before interval `i`; `prefix[m]` = total.
    prefix: Vec<f64>,
    /// Service rate, GFLOP-equivalents per ON-hour.
    speed: f64,
    /// Whether the host reported a GPU.
    gpu: bool,
    /// Cobb–Douglas utility per job family.
    util: Vec<f64>,
    /// Committed ON-hours (the FIFO queue tail).
    cursor_on: f64,
    /// ON-hours actually consumed (work + failed-attempt churn).
    busy_on: f64,
}

impl Lane {
    fn total_on(&self) -> f64 {
        *self.prefix.last().unwrap_or(&0.0)
    }

    /// ON-hours elapsed before wall time `t`.
    fn on_elapsed(&self, t: f64) -> f64 {
        let i = self.on.partition_point(|&(_, b)| b <= t);
        if i == self.on.len() {
            self.prefix[i]
        } else {
            self.prefix[i] + (t - self.on[i].0).max(0.0)
        }
    }

    /// Wall time at which cumulative ON-hours reach `w` (`w` must be in
    /// `[0, total_on]`).
    fn wall_at_on(&self, w: f64) -> f64 {
        let i = self
            .prefix
            .partition_point(|&p| p < w)
            .clamp(1, self.on.len())
            - 1;
        self.on[i].0 + (w - self.prefix[i])
    }

    /// Current backlog ahead of a job arriving at `t`, ON-hours.
    fn backlog_at(&self, t: f64) -> f64 {
        (self.cursor_on - self.on_elapsed(t)).max(0.0)
    }

    /// Estimated completion wall time of `work` ON-hours queued at `t`;
    /// infeasible work is pushed past the window end, staying ordered
    /// so earliest-finish still ranks overloads sensibly.
    fn estimate_finish(&self, t: f64, work: f64, horizon: f64) -> f64 {
        let w0 = self.cursor_on.max(self.on_elapsed(t));
        let w1 = w0 + work;
        let total = self.total_on();
        if w1 <= total {
            self.wall_at_on(w1)
        } else {
            2.0 * horizon + (w1 - total)
        }
    }

    /// Commit `work` ON-hours arriving at wall time `t`; returns the
    /// completion wall time, or `None` when the host churns away (or
    /// the window ends) first. Failed work still consumes the lane's
    /// remaining capacity — the host ground away at it.
    fn commit(&mut self, t: f64, work: f64, checkpointing: bool) -> Option<f64> {
        let w0 = self.cursor_on.max(self.on_elapsed(t));
        let total = self.total_on();
        if checkpointing {
            let w1 = w0 + work;
            if w1 <= total {
                self.cursor_on = w1;
                self.busy_on += w1 - w0;
                Some(self.wall_at_on(w1))
            } else {
                self.busy_on += (total - w0).max(0.0);
                self.cursor_on = total;
                None
            }
        } else {
            // Restart-on-interruption: the work unit needs one ON
            // session with `work` contiguous hours, starting where the
            // queue drains; every too-short session is burned retrying.
            if w0 >= total {
                return None;
            }
            let t0 = self.wall_at_on(w0);
            let mut i = self.on.partition_point(|&(_, b)| b <= t0);
            while i < self.on.len() {
                let start = self.on[i].0.max(t0);
                if self.on[i].1 - start >= work {
                    let done = start + work;
                    let w_done = self.on_elapsed(done).max(w0);
                    self.busy_on += w_done - w0;
                    self.cursor_on = w_done;
                    return Some(done);
                }
                i += 1;
            }
            self.busy_on += (total - w0).max(0.0);
            self.cursor_on = total;
            None
        }
    }
}

/// Per-family accumulator inside one shard.
#[derive(Debug, Clone, Default)]
struct FamAccum {
    jobs: usize,
    completed: usize,
    failed: usize,
    unassigned: usize,
    deadline_missed: usize,
    latency_sum: f64,
    size_sum: f64,
}

/// One shard's merged outcome.
struct ShardOutcome {
    hosts: usize,
    total_on_hours: f64,
    busy_on_hours: f64,
    replicas: usize,
    completed: usize,
    failed: usize,
    unassigned: usize,
    deadline_jobs: usize,
    deadline_missed: usize,
    latency_sum: f64,
    makespan: f64,
    predicted_utility: f64,
    realized_utility: f64,
    families: Vec<FamAccum>,
    /// Completed-job latency (sim-hours) — deterministic telemetry,
    /// merged order-invariantly into the collector after the shard
    /// merge.
    latency_hist: Histogram,
    /// Uniform draws spent sampling placement candidates.
    candidate_draws: u64,
    /// Distinct candidates actually scored.
    candidates_scored: u64,
}

impl ShardOutcome {
    fn empty(n_fam: usize) -> Self {
        Self {
            hosts: 0,
            total_on_hours: 0.0,
            busy_on_hours: 0.0,
            replicas: 0,
            completed: 0,
            failed: 0,
            unassigned: 0,
            deadline_jobs: 0,
            deadline_missed: 0,
            latency_sum: 0.0,
            makespan: 0.0,
            predicted_utility: 0.0,
            realized_utility: 0.0,
            families: vec![FamAccum::default(); n_fam],
            latency_hist: Histogram::new(),
            candidate_draws: 0,
            candidates_scored: 0,
        }
    }
}

/// Build this shard's lanes and run its jobs in arrival order.
fn run_shard(
    engine: &EngineReport,
    spec: &WorkloadSpec,
    policy: DispatchPolicy,
    jobs: &[Job],
    job_ids: &[u32],
    host_ids: &[u64],
) -> ShardOutcome {
    let start_days = spec.start.days();
    let horizon = spec.horizon_hours;
    let profiles: Vec<_> = spec.families.iter().map(|f| f.app.profile()).collect();

    // --- Lanes ---
    let mut lanes: Vec<Lane> = Vec::new();
    for &id in host_ids {
        let Some(host) = engine.fleet.host(id) else {
            continue;
        };
        let c_h = (host.created.days() - start_days) * 24.0;
        let d_h = (host.death.days() - start_days) * 24.0;
        let a0 = c_h.max(0.0);
        let a1 = d_h.min(horizon);
        if a1 <= a0 {
            continue;
        }
        let on: Vec<(f64, f64)> = match engine.availability_schedule(id, horizon) {
            Some(schedule) => schedule.on_intervals_between(a0, a1).collect(),
            // No availability model: the host is ON for its whole
            // eligible window.
            None => vec![(a0, a1)],
        };
        if on.is_empty() {
            continue;
        }
        let mut prefix = Vec::with_capacity(on.len() + 1);
        let mut acc = 0.0;
        prefix.push(0.0);
        for &(a, b) in &on {
            acc += b - a;
            prefix.push(acc);
        }
        // Resources in force when the host enters the window (hardware
        // refreshes inside the window keep the entry-rate — dispatch
        // models capacity, not mid-run re-benchmarks).
        let at = if c_h > 0.0 { host.created } else { spec.start };
        let res = *host.resources_at(at).unwrap_or(&host.resources);
        // Whetstone MIPS ≈ Mflops: cores · MIPS · 3600 s/h / 1000 →
        // GFLOP-equivalents per ON-hour.
        let speed = (f64::from(res.cores.max(1)) * res.whetstone_mips * 3.6).max(1e-6);
        lanes.push(Lane {
            a0,
            on,
            prefix,
            speed,
            gpu: host.gpu.is_some(),
            util: profiles.iter().map(|p| utility(p, &res)).collect(),
            cursor_on: 0.0,
            busy_on: 0.0,
        });
    }

    let mut out = ShardOutcome::empty(spec.families.len());
    out.hosts = lanes.len();
    out.total_on_hours = lanes.iter().map(Lane::total_on).sum();

    // --- Eligibility sweep ---
    // `activation[k]` / `removal[k]` order lanes by window entry/exit;
    // the eligible set uses swap-removal (like the popsim engine's
    // alive partition), so membership order is a pure function of the
    // job sequence.
    let mut activation: Vec<u32> = (0..lanes.len() as u32).collect();
    activation.sort_by(|&x, &y| lanes[x as usize].a0.total_cmp(&lanes[y as usize].a0));
    let mut removal: Vec<u32> = (0..lanes.len() as u32).collect();
    removal.sort_by(|&x, &y| {
        let ex = lanes[x as usize].on.last().map_or(0.0, |&(_, b)| b);
        let ey = lanes[y as usize].on.last().map_or(0.0, |&(_, b)| b);
        ex.total_cmp(&ey)
    });
    let exit_of = |lane: &Lane| lane.on.last().map_or(0.0, |&(_, b)| b);
    let (mut next_act, mut next_rem) = (0usize, 0usize);
    const GONE: u32 = u32::MAX;
    let mut eligible: Vec<u32> = Vec::with_capacity(lanes.len());
    let mut pos: Vec<u32> = vec![GONE; lanes.len()];

    let mut candidates: Vec<u32> = Vec::with_capacity(spec.candidates);
    let mut chosen: Vec<u32> = Vec::with_capacity(4);

    for &job_id in job_ids {
        let job = jobs[job_id as usize];
        let t = job.arrival;

        // Advance the sweep: admit lanes whose window has opened,
        // retire lanes whose last ON session has ended.
        while next_act < activation.len() && lanes[activation[next_act] as usize].a0 <= t {
            let li = activation[next_act];
            pos[li as usize] = eligible.len() as u32;
            eligible.push(li);
            next_act += 1;
        }
        while next_rem < removal.len() && exit_of(&lanes[removal[next_rem] as usize]) <= t {
            let li = removal[next_rem];
            next_rem += 1;
            let p = pos[li as usize];
            if p == GONE {
                continue; // exited before it ever activated
            }
            eligible.swap_remove(p as usize);
            if let Some(&moved) = eligible.get(p as usize) {
                pos[moved as usize] = p;
            }
            pos[li as usize] = GONE;
        }

        let fam_idx = job.family as usize;
        let fam = &spec.families[fam_idx];
        let facc = &mut out.families[fam_idx];
        facc.jobs += 1;
        facc.size_sum += job.size;
        let deadline = fam.deadline_hours;
        if deadline.is_some() {
            out.deadline_jobs += 1;
        }

        // --- Place every replica ---
        let mut rng = seeded_substream(spec.seed ^ EXEC_SALT, u64::from(job_id));
        let mut completion: Option<f64> = None;
        let mut assigned_any = false;
        chosen.clear();
        for _ in 0..fam.replication {
            // Power-of-d-choices: sample distinct candidates from the
            // eligible set (also distinct from this job's earlier
            // replicas); a bounded retry keeps the draw count finite on
            // tiny shards.
            candidates.clear();
            if !eligible.is_empty() {
                let want = spec
                    .candidates
                    .min(eligible.len().saturating_sub(chosen.len()));
                for _ in 0..4 * spec.candidates {
                    if candidates.len() >= want {
                        break;
                    }
                    out.candidate_draws += 1;
                    let li = eligible[rng.random_range(0..eligible.len())];
                    if !candidates.contains(&li) && !chosen.contains(&li) {
                        candidates.push(li);
                    }
                }
            }
            out.candidates_scored += candidates.len() as u64;
            let Some(&best) = pick(policy, &candidates, &lanes, &job, fam.wants_gpu, horizon)
            else {
                continue;
            };
            chosen.push(best);
            assigned_any = true;
            out.replicas += 1;
            let lane = &mut lanes[best as usize];
            out.predicted_utility += lane.util[fam_idx];
            let work = job.size / lane.speed;
            if let Some(done) = lane.commit(t, work, spec.checkpointing) {
                out.realized_utility += lane.util[fam_idx];
                completion = Some(completion.map_or(done, |c: f64| c.min(done)));
            }
        }

        // --- Score the job ---
        match completion {
            Some(done) => {
                out.completed += 1;
                facc.completed += 1;
                out.latency_hist.record(done - t);
                out.latency_sum += done - t;
                facc.latency_sum += done - t;
                out.makespan = out.makespan.max(done);
                if let Some(d) = deadline {
                    if done - t > d {
                        out.deadline_missed += 1;
                        facc.deadline_missed += 1;
                    }
                }
            }
            None => {
                if assigned_any {
                    out.failed += 1;
                    facc.failed += 1;
                } else {
                    out.unassigned += 1;
                    facc.unassigned += 1;
                }
                if deadline.is_some() {
                    out.deadline_missed += 1;
                    facc.deadline_missed += 1;
                }
            }
        }
    }

    out.busy_on_hours = lanes.iter().map(|l| l.busy_on).sum();
    out
}

/// Pick the best candidate under `policy`. Ties resolve to the earliest
/// candidate in sample order, which is itself deterministic.
fn pick<'a>(
    policy: DispatchPolicy,
    candidates: &'a [u32],
    lanes: &[Lane],
    job: &Job,
    wants_gpu: bool,
    horizon: f64,
) -> Option<&'a u32> {
    if candidates.len() <= 1 {
        return candidates.first();
    }
    let fam = job.family as usize;
    let t = job.arrival;
    // Higher score wins for every policy (earliest-finish negates).
    let score = |li: &u32| -> f64 {
        let lane = &lanes[*li as usize];
        match policy {
            DispatchPolicy::Random => 0.0,
            DispatchPolicy::GreedyUtility => lane.util[fam] / (1.0 + lane.backlog_at(t)),
            DispatchPolicy::EarliestFinish => {
                -lane.estimate_finish(t, job.size / lane.speed, horizon)
            }
            DispatchPolicy::TierAffinity => {
                let tier_match = lane.gpu == wants_gpu;
                let base = lane.speed / (1.0 + lane.backlog_at(t));
                if tier_match {
                    1e12 + base
                } else {
                    base
                }
            }
        }
    };
    if policy == DispatchPolicy::Random {
        return candidates.first();
    }
    candidates.iter().reduce(|a, b| {
        // Strictly-greater keeps the first of equals.
        if score(b) > score(a) {
            b
        } else {
            a
        }
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use resmodel_popsim::{engine, ArrivalLaw, Scenario};

    fn tiny_fleet(seed: u64) -> EngineReport {
        let mut scenario = Scenario::steady_state(seed);
        scenario.max_hosts = 600;
        scenario.shard_count = 8;
        scenario.arrivals = ArrivalLaw::Exponential {
            base_per_day: 6.0,
            growth_per_year: 0.18,
        };
        engine::run(&scenario).unwrap()
    }

    fn tiny_workload() -> WorkloadSpec {
        let mut spec = WorkloadSpec::preset("mixed").unwrap();
        spec.shard_count = 8;
        spec.horizon_hours = 240.0;
        spec = spec.with_job_budget(800);
        spec
    }

    #[test]
    fn job_generation_is_deterministic_and_sorted() {
        let spec = tiny_workload();
        let a = generate_jobs(&spec);
        let b = generate_jobs(&spec);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.size, y.size);
            assert_eq!(x.family, y.family);
        }
        for w in a.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        // Poisson totals land near the budget.
        assert!(
            (a.len() as f64 - 800.0).abs() < 160.0,
            "generated {} jobs",
            a.len()
        );
        // All four families are represented.
        let fams: std::collections::HashSet<u32> = a.iter().map(|j| j.family).collect();
        assert_eq!(fams.len(), spec.families.len());
    }

    #[test]
    fn dispatch_produces_consistent_counts() {
        let fleet = tiny_fleet(3);
        let spec = tiny_workload();
        for policy in DispatchPolicy::ALL {
            let report = dispatch(&fleet, &spec, policy).unwrap();
            let t = &report.totals;
            assert_eq!(t.jobs, t.completed + t.failed + t.unassigned, "{policy}");
            assert!(t.hosts > 0, "{policy}: no eligible hosts");
            assert!(t.completed > 0, "{policy}: nothing completed");
            assert!(t.replicas >= t.jobs - t.unassigned, "{policy}");
            assert!(t.makespan_hours <= spec.horizon_hours, "{policy}");
            assert!(
                t.host_utilization >= 0.0 && t.host_utilization <= 1.0 + 1e-9,
                "{policy}: utilization {}",
                t.host_utilization
            );
            assert!(t.realized_utility <= t.predicted_utility + 1e-9, "{policy}");
            assert!(
                t.utility_ratio > 0.0 && t.utility_ratio <= 1.0 + 1e-9,
                "{policy}"
            );
            let fam_jobs: usize = report.families.iter().map(|f| f.jobs).sum();
            assert_eq!(fam_jobs, t.jobs, "{policy}");
            let fam_missed: usize = report.families.iter().map(|f| f.deadline_missed).sum();
            assert_eq!(fam_missed, t.deadline_missed, "{policy}");
        }
    }

    #[test]
    fn observed_dispatch_is_identical_and_records_latency_histogram() {
        let fleet = tiny_fleet(3);
        let spec = tiny_workload();
        let policy = DispatchPolicy::EarliestFinish;
        let mut plain = dispatch(&fleet, &spec, policy).unwrap();
        let obs = Collector::new();
        let mut observed = dispatch_observed(&fleet, &spec, policy, &obs).unwrap();
        // Instrumentation must not perturb placement.
        plain.zero_timings();
        observed.zero_timings();
        assert_eq!(
            plain.to_json_pretty().unwrap(),
            observed.to_json_pretty().unwrap()
        );
        let m = obs.snapshot();
        assert_eq!(m.counter("sched.jobs"), Some(plain.totals.jobs as u64));
        assert_eq!(
            m.counter("sched.jobs_completed"),
            Some(plain.totals.completed as u64)
        );
        assert!(m.counter("sched.candidate_draws").unwrap() > 0);
        let hist = m
            .histogram("sched.placement_latency_hours.earliest-finish")
            .unwrap();
        assert_eq!(hist.count, plain.totals.completed as u64);
        // Latency histogram records sim-hours, bounded by 2× horizon +
        // overload overflow never being *completed*; all completions
        // land inside the window.
        assert!(hist.max <= spec.horizon_hours);
        assert_eq!(m.spans[0].path, "dispatch");
    }

    #[test]
    fn greedy_utility_beats_random_on_realized_utility_per_replica() {
        let fleet = tiny_fleet(5);
        let spec = tiny_workload();
        let random = dispatch(&fleet, &spec, DispatchPolicy::Random).unwrap();
        let greedy = dispatch(&fleet, &spec, DispatchPolicy::GreedyUtility).unwrap();
        let per_replica =
            |r: &DispatchReport| r.totals.predicted_utility / r.totals.replicas as f64;
        assert!(
            per_replica(&greedy) > per_replica(&random),
            "greedy {} vs random {}",
            per_replica(&greedy),
            per_replica(&random)
        );
    }

    #[test]
    fn earliest_finish_cuts_deadline_misses() {
        let fleet = tiny_fleet(7);
        let mut spec = WorkloadSpec::preset("deadline").unwrap();
        spec.shard_count = 8;
        spec.horizon_hours = 240.0;
        spec = spec.with_job_budget(900);
        let random = dispatch(&fleet, &spec, DispatchPolicy::Random).unwrap();
        let ef = dispatch(&fleet, &spec, DispatchPolicy::EarliestFinish).unwrap();
        assert!(
            ef.totals.deadline_miss_rate <= random.totals.deadline_miss_rate,
            "earliest-finish {} vs random {}",
            ef.totals.deadline_miss_rate,
            random.totals.deadline_miss_rate
        );
    }

    #[test]
    fn invalid_workload_names_the_grid_point() {
        let fleet = tiny_fleet(1);
        let mut spec = tiny_workload();
        spec.families.clear();
        let err = dispatch(&fleet, &spec, DispatchPolicy::Random).unwrap_err();
        match err {
            ResmodelError::Dispatch { point, .. } => {
                assert_eq!(point, "random/mixed");
            }
            other => panic!("expected a dispatch error, got {other}"),
        }
    }

    #[test]
    fn reports_round_trip_and_zero_timings() {
        let fleet = tiny_fleet(2);
        let spec = tiny_workload();
        let report = dispatch(&fleet, &spec, DispatchPolicy::TierAffinity).unwrap();
        let mut a = report.clone();
        let mut b = report;
        a.zero_timings();
        b.zero_timings();
        let json = a.to_json_pretty().unwrap();
        assert_eq!(json, b.to_json_pretty().unwrap());
        let back = DispatchReport::from_json(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn lane_time_conversions_are_inverse() {
        let lane = Lane {
            a0: 0.0,
            on: vec![(1.0, 3.0), (5.0, 6.0), (8.0, 12.0)],
            prefix: vec![0.0, 2.0, 3.0, 7.0],
            speed: 1.0,
            gpu: false,
            util: vec![],
            cursor_on: 0.0,
            busy_on: 0.0,
        };
        assert_eq!(lane.total_on(), 7.0);
        assert_eq!(lane.on_elapsed(0.5), 0.0);
        assert_eq!(lane.on_elapsed(2.0), 1.0);
        assert_eq!(lane.on_elapsed(4.0), 2.0);
        assert_eq!(lane.on_elapsed(100.0), 7.0);
        assert_eq!(lane.wall_at_on(1.0), 2.0);
        assert_eq!(lane.wall_at_on(2.0), 3.0);
        assert_eq!(lane.wall_at_on(2.5), 5.5);
        assert_eq!(lane.wall_at_on(7.0), 12.0);
        for w in [0.5, 1.0, 2.0, 2.5, 3.0, 6.9] {
            assert!(
                (lane.on_elapsed(lane.wall_at_on(w)) - w).abs() < 1e-12,
                "w={w}"
            );
        }
    }

    #[test]
    fn checkpointing_commit_spans_gaps_and_restart_needs_one_session() {
        let mk = || Lane {
            a0: 0.0,
            on: vec![(0.0, 2.0), (10.0, 13.0)],
            prefix: vec![0.0, 2.0, 5.0],
            speed: 1.0,
            gpu: false,
            util: vec![],
            cursor_on: 0.0,
            busy_on: 0.0,
        };
        // 3h of work with checkpointing: 2h in session 1, 1h into
        // session 2 → completes at 11.
        let mut lane = mk();
        assert_eq!(lane.commit(0.0, 3.0, true), Some(11.0));
        assert_eq!(lane.busy_on, 3.0);
        // A second job queues behind it (FIFO): 1h more → 12.
        assert_eq!(lane.commit(0.0, 1.0, true), Some(12.0));
        // Overcommit fails and consumes the tail.
        assert_eq!(lane.commit(0.0, 5.0, true), None);
        assert_eq!(lane.cursor_on, 5.0);
        // Without checkpointing the same 3h job must wait for the 3h
        // session: restarts burn session 1 entirely.
        let mut lane = mk();
        assert_eq!(lane.commit(0.0, 3.0, false), Some(13.0));
        assert_eq!(lane.busy_on, 5.0, "burned session + work");
        // A 4h job can never fit any session.
        let mut lane = mk();
        assert_eq!(lane.commit(0.0, 4.0, false), None);
    }
}
