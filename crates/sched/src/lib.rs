//! # resmodel-sched
//!
//! An event-driven **workload dispatch engine** over the modeled
//! volunteer fleet — the subsystem that makes the paper's Section VII
//! question operational. The paper argues that a good generative host
//! model lets you predict what an Internet-distributed application can
//! extract from a volunteer pool; `allocsim` reproduces that static
//! Cobb–Douglas valuation (Fig 15), `avail` supplies per-host ON/OFF
//! session structure, and `popsim` evolves the fleet itself through
//! arrivals, lifetimes and hardware refreshes. This crate composes all
//! three: it pushes millions of jobs through the churning,
//! intermittently-available fleet and reports what the placements
//! *actually* delivered next to what the static valuation *predicted*.
//!
//! ## Architecture
//!
//! * [`workload`] — a serde-round-trippable [`WorkloadSpec`]: job
//!   families with Poisson or bursty arrival processes, log-normal
//!   sizes in GFLOP-equivalents, optional deadlines, Table IX
//!   application shapes ([`AppKind`] →
//!   [`resmodel_allocsim::AppProfile`]) and replication factors.
//! * [`policy`] — pluggable placement policies ([`DispatchPolicy`]):
//!   random, greedy-utility (reusing [`resmodel_allocsim::utility`]),
//!   deadline-aware earliest-finish, and GPU tier-affinity.
//! * [`dispatch`](mod@dispatch) — the sharded simulator: hosts live and
//!   die on the [`resmodel_popsim`] timeline, progress only accrues
//!   during ON sessions of each host's deterministic
//!   [`resmodel_avail::Schedule`] (clipped to the dispatch window via
//!   [`resmodel_avail::Schedule::on_intervals_between`]), and replicas
//!   checkpoint/resume — or restart — across churn.
//! * [`report`] — the typed, serializable [`DispatchReport`]:
//!   throughput, makespan, deadline-miss rate, host utilization and
//!   realized-vs-predicted utility, byte-identical at any rayon thread
//!   count after [`DispatchReport::zero_timings`].
//!
//! ## Quick start
//!
//! ```
//! use resmodel_popsim::{engine, ArrivalLaw, Scenario};
//! use resmodel_sched::{dispatch, DispatchPolicy, WorkloadSpec};
//!
//! let mut scenario = Scenario::steady_state(42);
//! scenario.max_hosts = 400; // keep the doc test fast
//! scenario.arrivals = ArrivalLaw::Exponential {
//!     base_per_day: 6.0,
//!     growth_per_year: 0.18,
//! };
//! let fleet = engine::run(&scenario)?;
//!
//! let workload = WorkloadSpec::preset("mixed")
//!     .expect("built-in preset")
//!     .with_job_budget(300);
//! let report = dispatch(&fleet, &workload, DispatchPolicy::EarliestFinish)?;
//! assert!(report.totals.completed > 0);
//! assert!(report.totals.realized_utility <= report.totals.predicted_utility);
//! # Ok::<(), resmodel_error::ResmodelError>(())
//! ```

#![warn(clippy::unwrap_used)]

pub mod dispatch;
pub mod policy;
pub mod report;
pub mod workload;

pub use dispatch::{dispatch, dispatch_observed};
pub use policy::DispatchPolicy;
pub use report::{DispatchReport, DispatchTotals, FamilyDispatchStats};
pub use workload::{AppKind, ArrivalProcess, JobFamily, WorkloadSpec};
