//! The typed, serializable outcome of one dispatch run.

use crate::policy::DispatchPolicy;
use crate::workload::WorkloadSpec;
use resmodel_error::ResmodelError;
use serde::{Deserialize, Serialize};

/// Whole-run counters and rates. All fields except the wall-clock ones
/// are deterministic functions of `(EngineReport, WorkloadSpec,
/// DispatchPolicy)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchTotals {
    /// Hosts with any eligible (alive ∩ ON ∩ window) capacity.
    pub hosts: usize,
    /// Jobs generated over the window.
    pub jobs: usize,
    /// Replicas dispatched (≥ jobs when families replicate).
    pub replicas: usize,
    /// Jobs whose first replica finished inside the window.
    pub completed: usize,
    /// Jobs assigned but never finished (churn or window end).
    pub failed: usize,
    /// Jobs with no eligible host at arrival (empty shard or dead
    /// fleet).
    pub unassigned: usize,
    /// Deadline-bearing jobs that finished late or not at all.
    pub deadline_missed: usize,
    /// `deadline_missed / deadline-bearing jobs` (0 when none).
    pub deadline_miss_rate: f64,
    /// Last completion, hours from window start (0 when nothing
    /// finished).
    pub makespan_hours: f64,
    /// Mean completed-job latency (arrival → completion), hours.
    pub mean_latency_hours: f64,
    /// Completed jobs per simulated hour of window.
    pub jobs_per_sim_hour: f64,
    /// Consumed ON-hours / total eligible ON-hours across the fleet.
    pub host_utilization: f64,
    /// Sum of static Cobb–Douglas utilities over every dispatched
    /// replica — what a Section VII-style availability-blind allocator
    /// predicts the placements are worth.
    pub predicted_utility: f64,
    /// The same sum restricted to replicas that actually finished —
    /// what the churning fleet really delivered.
    pub realized_utility: f64,
    /// `realized / predicted` (1 when churn costs nothing; 0/0 → 0).
    pub utility_ratio: f64,
}

/// Per-family outcome row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyDispatchStats {
    /// Family name.
    pub name: String,
    /// Jobs generated.
    pub jobs: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs assigned but never finished.
    pub failed: usize,
    /// Jobs with no eligible host at arrival.
    pub unassigned: usize,
    /// Deadline misses (0 for best-effort families).
    pub deadline_missed: usize,
    /// Mean completed-job latency, hours.
    pub mean_latency_hours: f64,
    /// Mean generated job size, GFLOP-equivalents.
    pub mean_size_gflop: f64,
}

/// Everything a dispatch run produced, serializable to JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchReport {
    /// The workload that was dispatched (round-trippable).
    pub workload: WorkloadSpec,
    /// The policy that placed the replicas.
    pub policy: DispatchPolicy,
    /// Whole-run counters and rates.
    pub totals: DispatchTotals,
    /// Per-family rows, spec order.
    pub families: Vec<FamilyDispatchStats>,
    /// Job-generation wall time, ms: the sum of per-segment stream
    /// fills. Generation of segment *n+1* overlaps dispatch of segment
    /// *n*, so this can exceed the slack between `dispatch_ms` and
    /// `wall_ms`.
    pub generate_ms: f64,
    /// Dispatch wall time, ms: the whole streaming
    /// generate-and-process loop, overlapped fills included.
    pub dispatch_ms: f64,
    /// Whole-run wall time, ms.
    pub wall_ms: f64,
    /// Generated jobs per second of run wall time.
    pub jobs_per_sec: f64,
}

impl DispatchReport {
    /// Zero every wall-clock field, leaving only the deterministic
    /// content — the form compared by the byte-stability tests,
    /// mirroring the sweep layer's `SweepReport::zero_timings`.
    ///
    /// Implemented via [`resmodel_obs::zero_wall_clock`]'s key-suffix
    /// walk over the serialized tree, so a future `*_ms` / `*_per_sec`
    /// field is stripped without touching this method.
    pub fn zero_timings(&mut self) {
        let mut tree = serde_json::to_value(self);
        resmodel_obs::zero_wall_clock(&mut tree);
        *self = serde_json::from_value(&tree)
            .expect("zeroing preserves numeric kinds, so the report round-trips");
    }

    /// Serialize as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Json`] when serialization fails.
    pub fn to_json_pretty(&self) -> Result<String, ResmodelError> {
        serde_json::to_string_pretty(self).map_err(|e| ResmodelError::json("dispatch report", e))
    }

    /// Parse from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Json`] when the text is not a valid
    /// report.
    pub fn from_json(text: &str) -> Result<Self, ResmodelError> {
        serde_json::from_str(text).map_err(|e| ResmodelError::json("dispatch report", e))
    }
}
