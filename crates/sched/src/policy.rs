//! Dispatch policies: how a replica picks among its candidate hosts.

use serde::{Deserialize, Serialize};

/// A dispatch policy. Every policy sees the same candidate set (a
/// power-of-d-choices sample of hosts alive at the job's arrival) and
/// differs only in how it scores them, so policy comparisons isolate
/// the placement decision itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// The first candidate — the no-information baseline.
    Random,
    /// Highest Cobb–Douglas utility of the job's application shape on
    /// the host (the paper's Section VII valuation, via
    /// [`resmodel_allocsim::utility`]), discounted by the host's
    /// current backlog so work spreads instead of piling onto one
    /// utility monster.
    GreedyUtility,
    /// Earliest estimated completion given each candidate's backlog and
    /// ON/OFF schedule — the deadline-aware choice.
    EarliestFinish,
    /// Tier routing: families that want a GPU prefer GPU-equipped
    /// candidates (and others avoid them, keeping accelerator capacity
    /// free), then fastest-per-backlog.
    TierAffinity,
}

impl DispatchPolicy {
    /// All policies, comparison order.
    pub const ALL: [DispatchPolicy; 4] = [
        DispatchPolicy::Random,
        DispatchPolicy::GreedyUtility,
        DispatchPolicy::EarliestFinish,
        DispatchPolicy::TierAffinity,
    ];

    /// Short label for reports and grid-point names.
    pub fn label(&self) -> &'static str {
        match self {
            DispatchPolicy::Random => "random",
            DispatchPolicy::GreedyUtility => "greedy-utility",
            DispatchPolicy::EarliestFinish => "earliest-finish",
            DispatchPolicy::TierAffinity => "tier-affinity",
        }
    }
}

impl std::fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            DispatchPolicy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), DispatchPolicy::ALL.len());
        assert_eq!(
            DispatchPolicy::EarliestFinish.to_string(),
            "earliest-finish"
        );
    }

    #[test]
    fn policies_round_trip_through_json() {
        for p in DispatchPolicy::ALL {
            let json = serde_json::to_string(&p).expect("serializes");
            let back: DispatchPolicy = serde_json::from_str(&json).expect("parses");
            assert_eq!(p, back);
        }
    }
}
