//! Workload configuration: job families with stochastic arrival
//! processes, sizes in FLOP-equivalents, optional deadlines,
//! application resource shapes and replication factors — fully
//! serde-(de)serializable so a workload is a shareable JSON artifact.

use resmodel_allocsim::AppProfile;
use resmodel_error::ResmodelError;
use resmodel_trace::SimDate;
use serde::{Deserialize, Serialize};

/// A serializable reference to one of the paper's Table IX application
/// resource shapes ([`AppProfile`] itself holds `&'static str` names,
/// so specs reference profiles by kind instead of embedding them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppKind {
    /// Radio-signal analysis: floating-point heavy, tiny memory/disk.
    SetiAtHome,
    /// Parallel molecular dynamics: multicore, medium memory.
    FoldingAtHome,
    /// Climate prediction: a balanced mix, floating-point emphasis.
    ClimatePrediction,
    /// Distributed file sharing: disk-dominated.
    P2p,
}

impl AppKind {
    /// All kinds, in Table IX order.
    pub const ALL: [AppKind; 4] = [
        AppKind::SetiAtHome,
        AppKind::FoldingAtHome,
        AppKind::ClimatePrediction,
        AppKind::P2p,
    ];

    /// The Cobb–Douglas resource shape this kind references.
    pub fn profile(&self) -> AppProfile {
        match self {
            AppKind::SetiAtHome => AppProfile::SETI_AT_HOME,
            AppKind::FoldingAtHome => AppProfile::FOLDING_AT_HOME,
            AppKind::ClimatePrediction => AppProfile::CLIMATE_PREDICTION,
            AppKind::P2p => AppProfile::P2P,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AppKind::SetiAtHome => "seti",
            AppKind::FoldingAtHome => "folding",
            AppKind::ClimatePrediction => "climate",
            AppKind::P2p => "p2p",
        }
    }
}

/// Stochastic job arrival process over the dispatch window (hours from
/// window start).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals.
    Poisson {
        /// Mean arrivals per hour.
        per_hour: f64,
    },
    /// Poisson background plus a Gaussian burst — the flash-crowd
    /// analogue for jobs (a result release, a backlog flush).
    Burst {
        /// Background arrivals per hour.
        base_per_hour: f64,
        /// Burst peak, hours from window start.
        center_hour: f64,
        /// Burst standard deviation, hours.
        width_hours: f64,
        /// Peak multiplier on the background rate (0 = no burst).
        amplitude: f64,
    },
}

impl ArrivalProcess {
    /// Instantaneous arrival rate (jobs/hour) at `t` hours.
    pub fn rate(&self, t: f64) -> f64 {
        match self {
            ArrivalProcess::Poisson { per_hour } => *per_hour,
            ArrivalProcess::Burst {
                base_per_hour,
                center_hour,
                width_hours,
                amplitude,
            } => {
                let z = (t - center_hour) / width_hours.max(1e-9);
                base_per_hour * (1.0 + amplitude * (-0.5 * z * z).exp())
            }
        }
    }

    /// Expected number of arrivals over `[0, horizon]` (trapezoid
    /// integral at 1-hour resolution — exact for Poisson, close enough
    /// for burst shapes to scale workloads by job budget).
    pub fn expected_jobs(&self, horizon_hours: f64) -> f64 {
        match self {
            ArrivalProcess::Poisson { per_hour } => per_hour * horizon_hours,
            ArrivalProcess::Burst { .. } => {
                let steps = (horizon_hours.ceil() as usize).max(1);
                let dt = horizon_hours / steps as f64;
                let mut total = 0.0;
                for k in 0..steps {
                    let a = self.rate(k as f64 * dt);
                    let b = self.rate((k + 1) as f64 * dt);
                    total += 0.5 * (a + b) * dt;
                }
                total
            }
        }
    }

    fn scale(&mut self, factor: f64) {
        match self {
            ArrivalProcess::Poisson { per_hour } => *per_hour *= factor,
            ArrivalProcess::Burst { base_per_hour, .. } => *base_per_hour *= factor,
        }
    }
}

/// One family of jobs sharing an application shape, size law, arrival
/// process and scheduling requirements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobFamily {
    /// Family name (reports, error labels).
    pub name: String,
    /// Application resource shape (drives per-host utility and the
    /// policies that use it).
    pub app: AppKind,
    /// Arrival process over the dispatch window.
    pub arrivals: ArrivalProcess,
    /// Median job size, GFLOP-equivalents (a 10⁴ GFLOP job takes ~1 h
    /// on a 3-core 1500-MIPS-Whetstone host).
    pub size_gflop: f64,
    /// Log-normal σ of job sizes (`0` = every job exactly the median).
    pub size_sigma: f64,
    /// Completion deadline, hours after arrival; `None` = best-effort.
    pub deadline_hours: Option<f64>,
    /// Replicas dispatched per job (volunteer-computing redundancy);
    /// the job completes when the first replica finishes.
    pub replication: u32,
    /// Prefer GPU-equipped hosts (the tier-affinity policy routes on
    /// this).
    pub wants_gpu: bool,
    /// Hard cap on this family's arrivals (`0` = window-bounded only).
    pub max_jobs: usize,
}

/// The complete configuration of one dispatch run: when, for how long,
/// how the work arrives, and how execution is organised.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name (reports, bench labels).
    pub name: String,
    /// Master seed; job generation, shard routing and candidate
    /// sampling all derive substreams from it.
    pub seed: u64,
    /// Dispatch window start (simulated calendar date; availability
    /// schedules and host lives are evaluated from here).
    pub start: SimDate,
    /// Dispatch window length, hours.
    pub horizon_hours: f64,
    /// Dispatch shards: hosts partition by `id % shard_count` and every
    /// job routes to a shard by a seed substream — both pure functions
    /// of the spec, never of the machine, so reports are byte-identical
    /// at any thread count.
    pub shard_count: usize,
    /// Whether replicas checkpoint across OFF gaps (progress resumes)
    /// or restart their work unit at every interruption.
    pub checkpointing: bool,
    /// Candidate hosts sampled per replica (power-of-d-choices); the
    /// policy picks among these.
    pub candidates: usize,
    /// The job families.
    pub families: Vec<JobFamily>,
}

impl WorkloadSpec {
    /// Names accepted by [`WorkloadSpec::preset`].
    pub const PRESETS: [&'static str; 3] = ["mixed", "deadline", "burst"];

    /// A named built-in workload:
    ///
    /// * `"mixed"` — the four Table IX application shapes side by side:
    ///   a high-rate stream of small SETI work units, medium replicated
    ///   Folding runs, long deadline-bound climate ensembles, and a
    ///   GPU-preferring render family.
    /// * `"deadline"` — two families with tight deadlines; stresses the
    ///   earliest-finish policy.
    /// * `"burst"` — a Gaussian job burst over a small background;
    ///   stresses queueing behaviour.
    ///
    /// All presets open a 30-day window at mid-2006 (where capped
    /// engine fleets have their largest live population) and total a
    /// few thousand jobs; scale with [`WorkloadSpec::with_job_budget`].
    pub fn preset(name: &str) -> Option<Self> {
        let base = |name: &str, families: Vec<JobFamily>| Self {
            name: name.to_owned(),
            seed: 20110620,
            start: SimDate::from_year(2006.5),
            horizon_hours: 720.0,
            shard_count: 64,
            checkpointing: true,
            candidates: 4,
            families,
        };
        let family = |name: &str, app: AppKind, per_hour: f64, size: f64| JobFamily {
            name: name.to_owned(),
            app,
            arrivals: ArrivalProcess::Poisson { per_hour },
            size_gflop: size,
            size_sigma: 0.5,
            deadline_hours: None,
            replication: 1,
            wants_gpu: false,
            max_jobs: 0,
        };
        match name {
            "mixed" => Some(base(
                "mixed",
                vec![
                    family("seti-units", AppKind::SetiAtHome, 4.0, 2_000.0),
                    JobFamily {
                        replication: 2,
                        ..family("folding-md", AppKind::FoldingAtHome, 1.5, 20_000.0)
                    },
                    JobFamily {
                        deadline_hours: Some(96.0),
                        ..family(
                            "climate-ensemble",
                            AppKind::ClimatePrediction,
                            0.5,
                            80_000.0,
                        )
                    },
                    JobFamily {
                        wants_gpu: true,
                        ..family("gpu-render", AppKind::FoldingAtHome, 1.0, 10_000.0)
                    },
                ],
            )),
            "deadline" => Some(base(
                "deadline",
                vec![
                    JobFamily {
                        deadline_hours: Some(12.0),
                        ..family("urgent-units", AppKind::SetiAtHome, 3.0, 4_000.0)
                    },
                    JobFamily {
                        deadline_hours: Some(48.0),
                        replication: 2,
                        ..family("batch-md", AppKind::FoldingAtHome, 1.0, 30_000.0)
                    },
                ],
            )),
            "burst" => Some(base(
                "burst",
                vec![
                    JobFamily {
                        arrivals: ArrivalProcess::Burst {
                            base_per_hour: 0.8,
                            center_hour: 240.0,
                            width_hours: 24.0,
                            amplitude: 12.0,
                        },
                        ..family("crowd-units", AppKind::SetiAtHome, 0.0, 5_000.0)
                    },
                    family("background-md", AppKind::FoldingAtHome, 0.8, 15_000.0),
                ],
            )),
            _ => None,
        }
    }

    /// Proportionally rescale every family's arrival rate so the whole
    /// workload expects `total` jobs over the window — how the bench
    /// turns a preset into a million-job run without touching its mix.
    pub fn with_job_budget(mut self, total: usize) -> Self {
        let expected: f64 = self
            .families
            .iter()
            .map(|f| f.arrivals.expected_jobs(self.horizon_hours))
            .sum();
        if expected > 0.0 {
            let factor = total as f64 / expected;
            for f in &mut self.families {
                f.arrivals.scale(factor);
            }
        }
        self
    }

    /// Expected total jobs over the window (sum over families; arrival
    /// counts are Poisson around this).
    pub fn expected_jobs(&self) -> f64 {
        self.families
            .iter()
            .map(|f| f.arrivals.expected_jobs(self.horizon_hours))
            .sum()
    }

    /// Validate parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a [`ResmodelError::Config`] naming the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), ResmodelError> {
        let bad = |message: String| Err(ResmodelError::config("workload", message));
        if !(self.horizon_hours > 0.0) {
            return bad("horizon_hours must be > 0".into());
        }
        if self.shard_count == 0 {
            return bad("shard_count must be at least 1".into());
        }
        if self.candidates == 0 {
            return bad("candidates must be at least 1".into());
        }
        if self.families.is_empty() {
            return bad("at least one job family is required".into());
        }
        for f in &self.families {
            let ctx = &f.name;
            if !(f.size_gflop > 0.0) {
                return bad(format!("family `{ctx}`: size_gflop must be > 0"));
            }
            if !(f.size_sigma >= 0.0) {
                return bad(format!("family `{ctx}`: size_sigma must be >= 0"));
            }
            if f.replication == 0 {
                return bad(format!("family `{ctx}`: replication must be at least 1"));
            }
            if let Some(d) = f.deadline_hours {
                if !(d > 0.0) {
                    return bad(format!("family `{ctx}`: deadline_hours must be > 0"));
                }
            }
            match f.arrivals {
                ArrivalProcess::Poisson { per_hour } => {
                    if !(per_hour > 0.0) {
                        return bad(format!("family `{ctx}`: arrival rate must be > 0"));
                    }
                }
                ArrivalProcess::Burst {
                    base_per_hour,
                    width_hours,
                    amplitude,
                    ..
                } => {
                    if !(base_per_hour > 0.0) {
                        return bad(format!("family `{ctx}`: base arrival rate must be > 0"));
                    }
                    if !(width_hours > 0.0) {
                        return bad(format!("family `{ctx}`: burst width must be > 0"));
                    }
                    if !(amplitude >= 0.0) {
                        return bad(format!("family `{ctx}`: burst amplitude must be >= 0"));
                    }
                }
            }
        }
        // Duplicate family names would make per-family rows and
        // Dispatch error points ambiguous.
        let names: Vec<&str> = self.families.iter().map(|f| f.name.as_str()).collect();
        if (1..names.len()).any(|i| names[..i].contains(&names[i])) {
            return bad("family names must be distinct".into());
        }
        Ok(())
    }

    /// Serialize as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Json`] when serialization fails.
    pub fn to_json_pretty(&self) -> Result<String, ResmodelError> {
        serde_json::to_string_pretty(self).map_err(|e| ResmodelError::json("workload spec", e))
    }

    /// Parse from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Json`] when the text is not a valid
    /// spec.
    pub fn from_json(text: &str) -> Result<Self, ResmodelError> {
        serde_json::from_str(text).map_err(|e| ResmodelError::json("workload spec", e))
    }

    /// The canonical (compact, deterministically ordered) JSON form
    /// used for content addressing by the query-service cache.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Json`] when serialization fails.
    pub fn canonical_json(&self) -> Result<String, ResmodelError> {
        serde_json::to_string(self).map_err(|e| ResmodelError::json("workload spec", e))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_and_validate() {
        for name in WorkloadSpec::PRESETS {
            let spec = WorkloadSpec::preset(name).expect(name);
            assert_eq!(spec.name, name);
            spec.validate().unwrap();
            assert!(spec.expected_jobs() > 100.0, "{name} is trivial");
        }
        assert!(WorkloadSpec::preset("no-such").is_none());
    }

    #[test]
    fn specs_round_trip_through_json() {
        for name in WorkloadSpec::PRESETS {
            let spec = WorkloadSpec::preset(name).unwrap();
            let back = WorkloadSpec::from_json(&spec.to_json_pretty().unwrap()).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn job_budget_rescales_rates() {
        let spec = WorkloadSpec::preset("mixed")
            .unwrap()
            .with_job_budget(50_000);
        let expected = spec.expected_jobs();
        assert!(
            (expected - 50_000.0).abs() < 1.0,
            "budgeted workload expects {expected}"
        );
        // The family mix is preserved: rates scale by a common factor.
        let base = WorkloadSpec::preset("mixed").unwrap();
        let ratio = |s: &WorkloadSpec, i: usize| {
            s.families[i].arrivals.expected_jobs(s.horizon_hours) / s.expected_jobs()
        };
        for i in 0..base.families.len() {
            assert!((ratio(&base, i) - ratio(&spec, i)).abs() < 1e-9);
        }
    }

    #[test]
    fn burst_rate_peaks_at_center() {
        let p = ArrivalProcess::Burst {
            base_per_hour: 2.0,
            center_hour: 100.0,
            width_hours: 10.0,
            amplitude: 5.0,
        };
        assert!((p.rate(100.0) - 12.0).abs() < 1e-12);
        assert!(p.rate(200.0) < 2.1);
        // Integral exceeds the background mass by roughly the burst's
        // Gaussian mass (amplitude · width · √2π · base).
        let expected = p.expected_jobs(720.0);
        assert!(
            expected > 2.0 * 720.0 + 200.0,
            "burst mass missing: {expected}"
        );
    }

    #[test]
    fn invalid_workloads_are_rejected() {
        let mut spec = WorkloadSpec::preset("mixed").unwrap();
        spec.families.clear();
        assert!(spec.validate().is_err());
        let mut spec = WorkloadSpec::preset("mixed").unwrap();
        spec.horizon_hours = 0.0;
        assert!(spec.validate().is_err());
        let mut spec = WorkloadSpec::preset("mixed").unwrap();
        spec.shard_count = 0;
        assert!(spec.validate().is_err());
        let mut spec = WorkloadSpec::preset("mixed").unwrap();
        spec.candidates = 0;
        assert!(spec.validate().is_err());
        let mut spec = WorkloadSpec::preset("mixed").unwrap();
        spec.families[0].size_gflop = 0.0;
        assert!(spec.validate().is_err());
        let mut spec = WorkloadSpec::preset("mixed").unwrap();
        spec.families[0].replication = 0;
        assert!(spec.validate().is_err());
        let mut spec = WorkloadSpec::preset("mixed").unwrap();
        spec.families[0].deadline_hours = Some(0.0);
        assert!(spec.validate().is_err());
        let mut spec = WorkloadSpec::preset("mixed").unwrap();
        let name = spec.families[0].name.clone();
        spec.families[1].name = name;
        assert!(spec.validate().is_err(), "duplicate family names");
    }

    #[test]
    fn app_kinds_map_to_table_ix_profiles() {
        assert_eq!(AppKind::ALL.len(), 4);
        assert_eq!(AppKind::SetiAtHome.profile().name, "SETI@home");
        assert_eq!(AppKind::P2p.profile().disk, 0.7);
        let labels: std::collections::HashSet<_> = AppKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
