//! Evaluating host models for scheduler research (the paper's
//! Section VII in miniature).
//!
//! Scenario: you are designing a scheduling algorithm for
//! Internet-distributed applications and need synthetic host sets that
//! behave like the real volunteer pool. Which generative model should
//! you trust? We simulate the "real" world, fit all three candidate
//! models from its 2006-2010 trace, and score each by how closely the
//! Cobb-Douglas utility its hosts deliver matches the actual hosts
//! during 2010.
//!
//! Run with: `cargo run --release --example scheduler_eval`

use resmodel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("simulating measurement substrate (this takes a few seconds)...");
    let params = WorldParams::with_scale(0.002, 11);
    let trace = resmodel::boinc::sim::simulate_sanitized(&params);

    // Fit every model from the same historical window.
    let fit_cfg = FitConfig::default();
    let correlated = fit_host_model(&trace, &fit_cfg)?.model;
    let normal = NormalModel::fit(&trace, &fit_cfg.sample_dates)?;
    let grid = GridModel::fit(&trace, &fit_cfg.sample_dates)?;

    let generators: Vec<&dyn HostGenerator> = vec![&correlated, &normal, &grid];

    // Score on January-September 2010, like Fig 15.
    let config = UtilityExperimentConfig::default();
    let results = run_utility_experiment(&trace, &generators, &config)?;

    println!("\nmean % utility difference vs actual hosts (lower is better):");
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "application", "correlated", "normal", "grid"
    );
    for (a, app) in config.apps.iter().enumerate() {
        print!("{:<22}", app.name);
        for series in &results {
            print!(" {:>11.1}%", series.mean_of(a));
        }
        println!();
    }

    // A scheduler-facing summary: which model wins per application?
    println!("\nbest model per application:");
    for (a, app) in config.apps.iter().enumerate() {
        let best = results
            .iter()
            .min_by(|x, y| {
                x.mean_of(a)
                    .partial_cmp(&y.mean_of(a))
                    .expect("finite means")
            })
            .expect("non-empty model list");
        println!("  {:<22} -> {}", app.name, best.model);
    }

    Ok(())
}
