//! Quickstart: generate realistic Internet end hosts for any date with
//! the paper's published model, inspect their statistics, and print the
//! condensed parameter table (the paper's Table X).
//!
//! Run with: `cargo run --example quickstart`

use resmodel::prelude::*;
use resmodel::stats::describe::Summary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's model, exactly as published (Table X constants).
    let model = HostModel::paper();

    println!("== resmodel quickstart ==\n");
    println!("Model parameter summary (paper Table X):");
    println!(
        "{:<11} {:<16} {:<15} {:>10} {:>9}",
        "Resource", "Value", "Method", "a", "b"
    );
    for row in model.summary() {
        println!(
            "{:<11} {:<16} {:<15} {:>10.4} {:>9.4}",
            row.resource, row.value, row.method, row.a, row.b
        );
    }

    // Generate host populations for three dates and compare.
    for &year in &[2006.0, 2010.67, 2014.0] {
        let date = SimDate::from_year(year);
        let hosts = model.generate_population(date, 20_000, 42);

        let col = |f: fn(&GeneratedHost) -> f64| -> Result<Summary, StatsError> {
            let data: Vec<f64> = hosts.iter().map(f).collect();
            Summary::of(&data)
        };
        let cores = col(|h| h.cores as f64)?;
        let mem = col(|h| h.memory_mb)?;
        let whet = col(|h| h.whetstone_mips)?;
        let dhry = col(|h| h.dhrystone_mips)?;
        let disk = col(|h| h.avail_disk_gb)?;

        println!("\nGenerated population @ {year:.2} (n = {}):", hosts.len());
        println!(
            "  cores:     mean {:6.2}  σ {:6.2}",
            cores.mean, cores.std_dev
        );
        println!(
            "  memory:    mean {:6.0} MB  σ {:6.0} MB",
            mem.mean, mem.std_dev
        );
        println!(
            "  whetstone: mean {:6.0} MIPS  σ {:6.0}",
            whet.mean, whet.std_dev
        );
        println!(
            "  dhrystone: mean {:6.0} MIPS  σ {:6.0}",
            dhry.mean, dhry.std_dev
        );
        println!(
            "  disk:      mean {:6.1} GB  median {:6.1} GB",
            disk.mean, disk.median
        );
    }

    // The generated hosts preserve the paper's resource correlations.
    let hosts = model.generate_population(SimDate::from_year(2010.67), 20_000, 42);
    let corr = resmodel::core::validate::generated_correlation_matrix(&hosts)?;
    println!("\nGenerated correlation matrix (Table VIII analogue):");
    print!("{corr}");

    Ok(())
}
