//! Availability-aware application planning — the paper's proposed
//! joint resource + availability model (Section VIII future work) in
//! action.
//!
//! Scenario: your work units take 6 hours of computation. Some of your
//! code can checkpoint, some cannot. How much of the volunteer pool's
//! headline capacity is actually usable, and how long do work units
//! really take? We combine the correlated resource model (what hardware
//! a host has) with the availability model (when you can use it).
//!
//! Run with: `cargo run --release --example availability_aware`

use resmodel::avail::schedule::completion_time;
use resmodel::avail::{effective_utility, AvailabilityModel, HostClass};
use resmodel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let resource_model = HostModel::paper();
    let avail_model = AvailabilityModel::default_volunteer_mix();
    let date = SimDate::from_year(2010.67);
    let horizon_hours = 24.0 * 30.0; // one month
    let n = 5_000;

    let hosts = resource_model.generate_population(date, n, 7);
    let mut rng = resmodel::stats::rng::seeded(8);
    let schedules: Vec<(HostClass, resmodel::avail::Schedule)> = (0..n)
        .map(|_| avail_model.sample_schedule(horizon_hours, &mut rng))
        .collect();

    // 1. Pool capacity: raw vs availability-weighted.
    let raw_mips: f64 = hosts
        .iter()
        .map(|h| h.whetstone_mips * h.cores as f64)
        .sum();
    let eff_mips: f64 = hosts
        .iter()
        .zip(&schedules)
        .map(|(h, (_, s))| h.whetstone_mips * h.cores as f64 * s.availability_fraction())
        .sum();
    println!("pool floating-point capacity (whetstone × cores):");
    println!("  nominal:              {:.1} GMIPS", raw_mips / 1000.0);
    println!(
        "  availability-weighted: {:.1} GMIPS ({:.0}% of nominal)",
        eff_mips / 1000.0,
        eff_mips / raw_mips * 100.0
    );

    // 2. Work-unit completion: 6 hours of computation.
    let work = 6.0;
    for (label, checkpointing) in [
        ("with checkpointing", true),
        ("without checkpointing", false),
    ] {
        let times: Vec<f64> = schedules
            .iter()
            .filter_map(|(_, s)| completion_time(s, work, checkpointing))
            .collect();
        let finished = times.len() as f64 / n as f64;
        let mean_wall = times.iter().sum::<f64>() / times.len().max(1) as f64;
        println!(
            "\n6h work unit {label}: {:.0}% of hosts finish within a month; \
             mean wall-clock {:.1} h (vs 6 h of CPU)",
            finished * 100.0,
            mean_wall
        );
    }

    // 3. Per-class breakdown (who actually does the work?).
    println!("\nper-class availability:");
    for class in HostClass::ALL {
        let fracs: Vec<f64> = schedules
            .iter()
            .filter(|(c, _)| *c == class)
            .map(|(_, s)| s.availability_fraction())
            .collect();
        if fracs.is_empty() {
            continue;
        }
        let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
        println!(
            "  {:<10} {:>5.1}% of hosts, mean availability {:>5.1}%",
            class.name(),
            fracs.len() as f64 / n as f64 * 100.0,
            mean * 100.0
        );
    }

    // 4. Utility view: how much app utility survives availability
    //    discounting for a deadline-sensitive application that cannot
    //    checkpoint and needs ≥6 h sessions.
    let app = AppProfile::CLIMATE_PREDICTION;
    let raw_u: f64 = hosts
        .iter()
        .map(|h| resmodel::allocsim::utility(&app, h))
        .sum();
    let eff_u: f64 = hosts
        .iter()
        .zip(&schedules)
        .map(|(h, (_, s))| effective_utility(&app, h, s, Some(work)))
        .sum();
    println!(
        "\nClimate Prediction utility surviving availability + ≥6h-session gating: \
         {:.0}% of nominal",
        eff_u / raw_u * 100.0
    );
    println!("(planning with the resource model alone would overpromise by the remainder)");

    Ok(())
}
