//! Population dynamics: evolve a correlated host fleet through
//! simulated time under each built-in scenario and watch the streaming
//! statistics — active population, resource growth, GPU adoption,
//! availability-discounted utility — react to arrivals, churn and
//! hardware refreshes.
//!
//! Run with: `cargo run --release --example population_dynamics`

use resmodel::popsim::engine;
use resmodel::popsim::ArrivalLaw;
use resmodel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== resmodel population dynamics ==");

    for mut scenario in Scenario::all_builtin(20110620) {
        // Slow the arrival stream so each scenario stays ~30k hosts
        // without hitting the cap (which would mask the flash crowd);
        // raise the rate back up for million-host runs.
        scenario.max_hosts = 60_000;
        scenario.arrivals = match scenario.arrivals {
            ArrivalLaw::FlashCrowd {
                burst_center,
                burst_width_days,
                burst_amplitude,
                ..
            } => ArrivalLaw::FlashCrowd {
                base_per_day: 10.0,
                growth_per_year: 0.18,
                burst_center,
                burst_width_days,
                burst_amplitude,
            },
            _ => ArrivalLaw::Exponential {
                base_per_day: 10.0,
                growth_per_year: 0.18,
            },
        };
        let report = engine::run(&scenario)?;

        println!(
            "\n--- scenario `{}` (seed {}, {} shards) ---",
            report.scenario.name,
            report.scenario.seed,
            report.fleet.shard_count()
        );
        println!(
            "{:>8} {:>8} {:>8} {:>7} {:>9} {:>7} {:>6} {:>7}",
            "year", "active", "arrived", "cores", "mem MB", "GPU %", "avail", "U(seti)"
        );
        for s in report.series.snapshots.iter().step_by(2) {
            println!(
                "{:>8.2} {:>8} {:>8} {:>7.2} {:>9.0} {:>6.1}% {:>6.2} {:>7.1}",
                s.t.year(),
                s.active,
                s.arrived,
                s.cores.mean(),
                s.memory_mb.mean(),
                100.0 * s.gpu_fraction(),
                s.mean_availability(),
                s.mean_utility(0),
            );
        }

        let last = report.series.snapshots.last().expect("non-empty series");
        let refreshes: usize = report.fleet.iter().map(|h| h.refresh_count()).sum();
        println!(
            "fleet: {} hosts ever, {} hardware refreshes, {:.1}% of active GPU-equipped at end",
            report.fleet.len(),
            refreshes,
            100.0 * last.gpu_fraction()
        );

        // The engine bridges back into the paper's analysis pipeline:
        // export the fleet as a measurement trace and query it.
        let trace = resmodel::popsim::fleet_to_trace(&report.fleet, report.scenario.end);
        let probe = SimDate::from_year(2009.0);
        println!(
            "trace export: {} records, {} active at 2009.0 (fleet says {})",
            trace.len(),
            trace.active_count(probe),
            report.fleet.active_at(probe)
        );

        // Per-host availability schedules on demand (deterministic).
        if let Some(schedule) = report.availability_schedule(0, 24.0 * 30.0) {
            println!(
                "host 0: {:?} class, {:.0}% available over its first 30 days ({} sessions)",
                report
                    .fleet
                    .host(0)
                    .and_then(|h| h.class)
                    .expect("class assigned"),
                100.0 * schedule.availability_fraction(),
                schedule.session_count()
            );
        }
    }

    Ok(())
}
