//! Comparing dispatch policies across the four scenario families.
//!
//! Scenario: you operate an Internet-scale volunteer application and
//! must choose a placement policy before the fleet's future is known.
//! We evolve each built-in population scenario (steady growth, flash
//! crowd, GPU wave, market shift) uncapped through 2006-2011, open the
//! dispatch window where each scenario is distinctive (right after the
//! flash crowd's burst; deep into the GPU wave's adoption ramp), and
//! push the same mixed workload through each fleet under all four
//! policies.
//!
//! Run with: `cargo run --release --example dispatch`

use resmodel::popsim::{engine, ArrivalLaw, Scenario};
use resmodel::sched::{dispatch, DispatchPolicy, WorkloadSpec};
use resmodel::trace::SimDate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base_workload = WorkloadSpec::preset("mixed")
        .expect("built-in preset")
        .with_job_budget(4_000);

    println!(
        "dispatching ~{:.0} jobs ({} families) into each fleet over {} days\n",
        base_workload.expected_jobs(),
        base_workload.families.len(),
        base_workload.horizon_hours / 24.0,
    );
    println!(
        "{:<14} {:<16} {:>6} {:>9} {:>7} {:>7} {:>8} {:>9} {:>9}",
        "scenario", "policy", "hosts", "completed", "failed", "miss%", "util%", "u-ratio", "lat h"
    );

    for mut scenario in Scenario::all_builtin(42) {
        // Uncapped, slower arrivals: hosts keep arriving through the
        // whole 2006-2011 span, so the families actually diverge
        // (capped fleets would share their early-2006 prefix).
        scenario.max_hosts = 0;
        scenario.arrivals = match scenario.arrivals {
            ArrivalLaw::FlashCrowd {
                burst_center,
                burst_width_days,
                burst_amplitude,
                ..
            } => ArrivalLaw::FlashCrowd {
                base_per_day: 2.0,
                growth_per_year: 0.18,
                burst_center,
                burst_width_days,
                burst_amplitude,
            },
            _ => ArrivalLaw::Exponential {
                base_per_day: 2.0,
                growth_per_year: 0.18,
            },
        };
        let fleet = engine::run(&scenario)?;

        // Open the window where this scenario is at its most
        // distinctive: the burst aftermath for the flash crowd, the
        // adoption ramp for the GPU wave.
        let mut workload = base_workload.clone();
        workload.start = match scenario.name.as_str() {
            "flash-crowd" => SimDate::from_year(2008.55),
            _ => SimDate::from_year(2010.5),
        };

        for policy in DispatchPolicy::ALL {
            let r = dispatch(&fleet, &workload, policy)?;
            let t = &r.totals;
            println!(
                "{:<14} {:<16} {:>6} {:>9} {:>7} {:>6.1}% {:>7.1}% {:>9.3} {:>9.1}",
                scenario.name,
                policy.label(),
                t.hosts,
                t.completed,
                t.failed + t.unassigned,
                100.0 * t.deadline_miss_rate,
                100.0 * t.host_utilization,
                t.utility_ratio,
                t.mean_latency_hours,
            );
        }
        println!();
    }

    println!("reading the table:");
    println!("  - earliest-finish posts the lowest deadline-miss rate; greedy-");
    println!("    utility realizes the largest share of the predicted Cobb-");
    println!("    Douglas utility (u-ratio);");
    println!("  - the flash crowd's burst cohort makes its window host-rich,");
    println!("    and the gpu-wave fleet rewards tier-affinity routing;");
    println!("  - market-shift is the control: it only relabels OS/CPU mixes,");
    println!("    so hardware-driven dispatch matches steady-state exactly;");
    println!("  - the gap between u-ratio and 1.0 is what churn and OFF time");
    println!("    cost an availability-blind Section VII valuation.");
    Ok(())
}
