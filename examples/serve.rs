//! Serving: start an in-process `resmodel.svc/1` server, round-trip a
//! pipeline query through the typed client, and watch the
//! content-addressed cache turn the second query into a byte-exact
//! replay.
//!
//! Run with: `cargo run --example serve`
//!
//! The same protocol is served out-of-process by the `resmodeld`
//! binary (`resmodeld --uds /tmp/resmodel.sock`, then
//! `resmodeld --query run_pipeline --uds /tmp/resmodel.sock --spec spec.json`).

use resmodel::core::fit::FitConfig;
use resmodel::obs::Collector;
use resmodel::pipeline::Pipeline;
use resmodel::popsim::Scenario;
use resmodel::trace::SimDate;
use resmodel_svc::{serve_tcp, Client, ServerConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== resmodel serving quickstart ==\n");

    // An observed server on an ephemeral port: the collector picks up
    // cache hit/miss counters and per-endpoint latency histograms.
    let obs = Collector::new();
    let server = serve_tcp("127.0.0.1:0", ServerConfig::default(), &obs)?;
    println!("serving on {}", server.addr());

    // A modeled fleet with a fitted model — the expensive part the
    // cache exists to amortize.
    let spec = Pipeline::from_scenario(Scenario::steady_state(20110620))
        .max_hosts(4_000)
        .sanitize_default()
        .fit(FitConfig::yearly(2007, 2010))
        .predict(vec![SimDate::from_year(2012.0)])
        .spec()
        .clone();

    let client = Client::tcp(server.tcp_addr().expect("tcp server").to_string());

    let t0 = Instant::now();
    let cold = client.run_pipeline(&spec)?;
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let warm = client.run_pipeline(&spec)?;
    let warm_ms = t1.elapsed().as_secs_f64() * 1e3;

    println!(
        "\ncold query: {:5.1} ms  (cached: {}, spec {})",
        cold_ms,
        cold.cached,
        cold.spec_hash.as_deref().unwrap_or("-"),
    );
    println!(
        "warm query: {:5.1} ms  (cached: {}, same address)",
        warm_ms, warm.cached,
    );
    assert!(!cold.cached && warm.cached);

    // The replay is byte-identical — the determinism contract over the
    // wire.
    let identical = cold.body_pretty() == warm.body_pretty();
    println!(
        "bodies byte-identical: {identical} ({} bytes)",
        cold.body_pretty().len(),
    );
    assert!(identical);

    // The stats endpoint exposes the cache and the metrics snapshot.
    let stats = client.stats()?;
    let cache = &stats.body["cache"];
    let figure = |key: &str| cache[key].as_u64().unwrap_or(0);
    println!(
        "\ncache: {} hits, {} misses, {} of {} entries",
        figure("hits"),
        figure("misses"),
        figure("entries"),
        figure("capacity"),
    );

    client.shutdown()?;
    server.wait();
    println!("server stopped");
    Ok(())
}
