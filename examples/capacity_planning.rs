//! Capacity planning for a volunteer-computing project.
//!
//! Scenario (the paper's Section VI-C put to work): you run a
//! BOINC-style project today and must decide whether next year's
//! application — which needs 4 cores and 4 GB of memory per host — will
//! find enough capable volunteers. We simulate the measured past,
//! refit the model from the trace, and forecast the host mix to 2014.
//!
//! Run with: `cargo run --release --example capacity_planning`

use resmodel::core::predict::{memory_prediction, moment_prediction, multicore_prediction};
use resmodel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. "Measure" the world: run the synthetic SETI@home substrate.
    println!("simulating measurement substrate (this takes a few seconds)...");
    let params = WorldParams::with_scale(0.002, 7);
    let trace = resmodel::boinc::sim::simulate_sanitized(&params);
    println!(
        "trace: {} hosts, {} active at Jan 2010",
        trace.len(),
        trace.active_count(SimDate::from_year(2010.0))
    );

    // 2. Refit the model from the measured trace.
    let report = fit_host_model(&trace, &FitConfig::default())?;
    println!("\nfitted core ratio laws (paper Table IV analogue):");
    for row in &report.core_laws {
        println!(
            "  {:<18} a = {:7.3}  b = {:7.4}  r = {:7.4}",
            row.label, row.fit.a, row.fit.b, row.fit.r
        );
    }

    // 3. Forecast the 2011-2014 host mix.
    let dates: Vec<SimDate> = (2011..=2014)
        .map(|y| SimDate::from_year(y as f64))
        .collect();
    let cores = multicore_prediction(&report.model, &dates)?;
    let memory = memory_prediction(&report.model, &dates)?;

    println!("\nforecast host mix:");
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>11} {:>12}",
        "year", "1 core", "≥4 cores", "≥8 cores", "mean cores", "mean mem GB"
    );
    for (c, m) in cores.iter().zip(&memory) {
        println!(
            "{:>6.0} {:>8.1}% {:>8.1}% {:>8.1}% {:>11.2} {:>12.2}",
            c.date.year(),
            c.one_core * 100.0,
            c.at_least_4 * 100.0,
            c.at_least_8 * 100.0,
            c.mean_cores,
            m.mean_memory_mb / 1024.0
        );
    }

    // 4. The planning decision: what fraction of 2014 hosts can run a
    //    4-core / 4 GB application?
    let p2014 = &cores[cores.len() - 1];
    let m2014 = &memory[memory.len() - 1];
    let capable = p2014.at_least_4.min(1.0 - m2014.le_4gb);
    println!(
        "\n>= 4 cores in 2014: {:.0}%   > 4 GB memory in 2014: {:.0}%",
        p2014.at_least_4 * 100.0,
        (1.0 - m2014.le_4gb) * 100.0
    );
    println!(
        "conservative capable-host estimate: {:.0}% of the volunteer pool",
        capable * 100.0
    );

    let speeds = moment_prediction(&report.model, SimDate::from_year(2014.0));
    println!(
        "expected 2014 speeds: dhrystone {:.0}±{:.0} MIPS, whetstone {:.0}±{:.0} MIPS",
        speeds.dhrystone.0, speeds.dhrystone.1, speeds.whetstone.0, speeds.whetstone.1
    );

    Ok(())
}
