//! Trace analysis end to end: sanitize a raw measurement trace,
//! convert it to the columnar layout once, test which distribution
//! family fits each resource (the paper's Section V-F
//! Kolmogorov-Smirnov methodology) off shared column views, export to
//! CSV, and read it back.
//!
//! Run with: `cargo run --release --example trace_analysis`

use resmodel::core::fit::select_resource_family_columnar;
use resmodel::prelude::*;
use resmodel::stats::describe::mean_variance;
use resmodel::stats::ks::SubsampleConfig;
use resmodel::trace::columnar::ColumnarTrace;
use resmodel::trace::sanitize::{sanitize, SanitizeRules};
use resmodel::trace::store::ResourceColumn;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("simulating measurement substrate (this takes a few seconds)...");
    let raw = resmodel::boinc::simulate(&WorldParams::with_scale(0.002, 23));

    // 1. Sanitization (paper Section V-B: discard absurd reports).
    let report = sanitize(&raw, SanitizeRules::default());
    println!(
        "sanitization: discarded {} of {} hosts ({:.3}%; paper: 0.12%)",
        report.discarded,
        raw.len(),
        report.discarded_fraction * 100.0
    );
    let trace = report.trace;

    // 2. Columnarize once: every per-date analysis below shares the
    //    same dense column arrays instead of re-scanning host rows.
    let columnar = ColumnarTrace::from(&trace);
    println!(
        "\ncolumnar store: {} hosts, {} snapshots across 7 flattened columns",
        columnar.len(),
        columnar.snapshot_count()
    );

    // 3. Resolve the Jan 2008 active population ONCE; reuse it for
    //    every resource extraction at that date.
    let date = SimDate::from_year(2008.0);
    let active = columnar.active_at(date);
    println!("active hosts at {date}: {}", active.len());

    // Zero-copy column views feed the moment accumulators directly —
    // no intermediate Vec<f64> per (date, resource) pair.
    for column in [ResourceColumn::Memory, ResourceColumn::Dhrystone] {
        let mv = mean_variance(columnar.column(&active, column).iter())?;
        println!(
            "  {:<10} mean {:>9.1}, std-dev {:>8.1}  (n = {})",
            column.name(),
            mv.mean,
            mv.variance.sqrt(),
            mv.n
        );
    }

    // 4. Distribution-family selection per resource, reusing the same
    //    active set for all three columns.
    let mut rng = resmodel::stats::rng::seeded(5);
    println!("\nKS family selection at {date} (avg p-value of 100 × n=50 subsamples):");
    for column in [
        ResourceColumn::Whetstone,
        ResourceColumn::Dhrystone,
        ResourceColumn::Disk,
    ] {
        let ranked = select_resource_family_columnar(
            &columnar,
            &active,
            column,
            SubsampleConfig::default(),
            &mut rng,
        )?;
        let best = &ranked[0];
        println!(
            "  {:<10} best: {:<11} (p = {:.3}); runner-up: {} (p = {:.3})",
            column.name(),
            best.family.name(),
            best.p_value,
            ranked[1].family.name(),
            ranked[1].p_value,
        );
    }

    // 5. Lifetime distribution (paper Fig 1), off the columnar store's
    //    cached first/last-contact columns.
    let weibull =
        resmodel::core::fit::lifetime_weibull_columnar(&columnar, SimDate::from_year(2010.5))?;
    println!(
        "\nlifetime Weibull fit: k = {:.3}, λ = {:.1} days (paper: k = 0.58, λ = 135)",
        weibull.shape(),
        weibull.scale()
    );

    // 6. Round-trip the trace through the CSV format.
    let mut buf = Vec::new();
    resmodel::trace::csv::write_trace(&trace, &mut buf)?;
    println!(
        "\nCSV export: {} bytes for {} hosts",
        buf.len(),
        trace.len()
    );
    let back = resmodel::trace::csv::read_trace(buf.as_slice())?;
    assert_eq!(back.len(), trace.len());
    println!("CSV round-trip OK ({} hosts preserved)", back.len());

    Ok(())
}
