//! The end-to-end pipeline: run a population scenario, sanitize the
//! exported trace, fit the correlated ratio-law model, validate it
//! against a held-out date, predict forward — one builder chain, one
//! typed JSON report.
//!
//! Run with: `cargo run --release --example pipeline`

use resmodel::core::fit::FitConfig;
use resmodel::pipeline::{Pipeline, PipelineSpec};
use resmodel::prelude::*;

fn main() -> Result<(), ResmodelError> {
    println!("== resmodel pipeline: scenario → sanitize → fit → validate → predict ==\n");

    let pipeline = Pipeline::from_scenario(Scenario::steady_state(20110620))
        .max_hosts(30_000)
        .sanitize_default()
        .fit(FitConfig::yearly(2007, 2010))
        .validate(vec![SimDate::from_year(2010.5)])
        .predict(
            (2011..=2014)
                .map(|y| SimDate::from_year(y as f64))
                .collect(),
        );

    // The spec is data: it serializes, round-trips, and can be stored
    // next to the results it produced.
    let spec_json = pipeline.spec().to_json_pretty()?;
    assert_eq!(PipelineSpec::from_json(&spec_json)?, *pipeline.spec());
    println!(
        "spec is a shareable artifact ({} bytes of JSON)\n",
        spec_json.len()
    );

    let report = pipeline.run()?;

    let w = &report.world;
    println!(
        "world: {} hosts ({} raw, {:.2}% discarded), {:.0}ms build + {:.0}ms fit",
        w.hosts,
        w.raw_hosts,
        w.discarded_fraction * 100.0,
        report.timing.build_ms,
        report.timing.fit_ms
    );

    let fit = report.fit.as_ref().expect("fit stage ran");
    println!("\nfitted core ratio laws (Table IV):");
    for row in &fit.report.core_laws {
        println!(
            "  {:<20} a = {:>7.3}  b = {:>8.4}  r = {:>7.4}",
            row.label, row.fit.a, row.fit.b, row.fit.r
        );
    }
    if let Some(l) = fit.lifetime {
        println!(
            "lifetime Weibull: k = {:.3}, lambda = {:.1} days (paper: 0.58, 135)",
            l.shape, l.scale_days
        );
    }

    for v in report.validation.as_deref().unwrap_or_default() {
        println!(
            "\nvalidation at {:.2} ({} hosts): worst mean diff {:.1}%",
            v.date.year(),
            v.hosts,
            v.comparisons
                .iter()
                .map(|c| c.mean_diff_fraction * 100.0)
                .fold(0.0f64, f64::max)
        );
    }

    if let Some(p) = &report.predictions {
        println!("\nforecast (Fig 13/14):");
        for (mc, mem) in p.multicore.iter().zip(&p.memory) {
            println!(
                "  {:.0}: mean cores {:.2}, mean memory {:.1} GB, ≥4-core share {:.0}%",
                mc.date.year(),
                mc.mean_cores,
                mem.mean_memory_mb / 1024.0,
                mc.at_least_4 * 100.0
            );
        }
    }

    // The whole report serializes for downstream tooling.
    let json = report.to_json_pretty()?;
    println!("\nfull report: {} bytes of JSON", json.len());
    Ok(())
}
