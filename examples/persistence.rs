//! Out-of-core persistence: build a 100k-host fleet once, save its
//! sanitized trace as a `resmodel.trace/1` file, then run the whole
//! fit + validate analysis again straight off the mapped file — and
//! time reload against regeneration.
//!
//! The saved file is mmap-friendly: every column is a 64-byte-aligned
//! little-endian section, so reopening it costs one `mmap` and a
//! checksum pass instead of re-simulating the fleet. The analysis is
//! byte-identical either way (that is asserted below, not assumed).
//!
//! Run with: `cargo run --release --example persistence`

use resmodel::core::fit::FitConfig;
use resmodel::pipeline::Pipeline;
use resmodel::prelude::*;
use resmodel::trace::MappedTrace;
use std::time::Instant;

fn main() -> Result<(), ResmodelError> {
    println!("== resmodel persistence: save once, map forever ==\n");
    let path = std::env::temp_dir().join("resmodel-example-persistence.rmt");

    let stages = |p: Pipeline| {
        p.fit(FitConfig::yearly(2007, 2010))
            .validate_seeded(vec![SimDate::from_year(2010.5)], 7)
    };

    // --- Pass 1: simulate, sanitize, analyze, and persist. ---
    let t0 = Instant::now();
    let regenerated = stages(
        Pipeline::from_scenario(Scenario::steady_state(20110620))
            .max_hosts(100_000)
            .sanitize_default(),
    )
    .save_trace(&path)
    .run()?;
    let regenerate_ms = t0.elapsed().as_secs_f64() * 1e3;

    let bytes = std::fs::metadata(&path).map_or(0, |m| m.len());
    println!(
        "pass 1 (simulate + analyze + save): {regenerate_ms:>7.0} ms  \
         → {} hosts, {:.1} MB on disk",
        regenerated.world.hosts,
        bytes as f64 / 1e6
    );

    // --- Pass 2: map the file and run the same analysis. ---
    let t0 = Instant::now();
    let mapped = MappedTrace::open(&path)?;
    println!(
        "mapped {} ({} backend, {} precision)",
        mapped.path(),
        mapped.backend(),
        mapped.precision().name()
    );
    let reloaded = stages(Pipeline::from_trace_file(&path)?).run()?;
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("pass 2 (map + analyze):             {load_ms:>7.0} ms");

    // Identity, not similarity: the mapped run reproduces the fit and
    // validation blocks byte-for-byte.
    assert_eq!(
        serde_json::to_string_pretty(&reloaded.fit),
        serde_json::to_string_pretty(&regenerated.fit),
        "fit from the mapped file must match regeneration"
    );
    assert_eq!(
        serde_json::to_string_pretty(&reloaded.validation),
        serde_json::to_string_pretty(&regenerated.validation),
        "validation from the mapped file must match regeneration"
    );
    println!(
        "\nfit + validation byte-identical; reload is {:.1}x cheaper than regeneration",
        regenerate_ms / load_ms.max(0.001)
    );

    let _ = std::fs::remove_file(&path);
    Ok(())
}
