//! A four-scenario comparison sweep: run every built-in population
//! family — steady-state, flash-crowd, gpu-wave, market-shift —
//! through the full pipeline as one parallel batch, then read the
//! cross-scenario comparison table off the typed report.
//!
//! Run with: `cargo run --release --example sweep`

use resmodel::prelude::*;

fn main() -> Result<(), ResmodelError> {
    println!("== resmodel sweep: 4 scenario families as one batch ==\n");

    // The "families" preset is the paper-style comparison grid; shrink
    // the fleets so the example finishes in a couple of seconds.
    let mut spec = SweepSpec::preset("families").expect("families is a built-in preset");
    spec.fleet_sizes = vec![10_000];

    // Like a pipeline spec, a sweep spec is data: the whole batch
    // experiment round-trips through JSON.
    let json = spec.to_json_pretty()?;
    assert_eq!(SweepSpec::from_json(&json)?, spec);
    println!(
        "grid: {} jobs ({} bytes of spec JSON)\n",
        spec.job_count(),
        json.len()
    );

    let report = spec.run()?;

    println!(
        "{:<14} {:>7} {:>10} {:>9} {:>9}",
        "scenario", "hosts", "hosts/sec", "mean KS", "w-shape"
    );
    for c in &report.comparisons {
        println!(
            "{:<14} {:>7} {:>10.0} {:>9} {:>9}",
            c.scenario,
            c.total_hosts,
            c.mean_hosts_per_sec,
            c.mean_ks.map_or_else(|| "-".into(), |k| format!("{k:.3}")),
            c.mean_lifetime_shape
                .map_or_else(|| "-".into(), |s| format!("{s:.2}")),
        );
    }

    let t = &report.totals;
    println!(
        "\ntotals: {} hosts in {:.0} ms on {} threads -> {:.0} hosts/sec (peak job {:.0} ms)",
        t.total_hosts, t.wall_ms, t.threads, t.hosts_per_sec, t.peak_job_wall_ms
    );

    // The CI perf artifact is a projection of the same report.
    let artifact = report.bench_artifact();
    println!(
        "bench artifact `{}`: {} job rows, schema {}",
        artifact.sweep,
        artifact.jobs.len(),
        artifact.schema
    );
    Ok(())
}
