//! Persistence identity against the committed golden report: the
//! `resmodel.trace/1` round trip must not perturb a single byte of
//! the analysis.
//!
//! Two claims, both pinned to `tests/golden/steady_state_report.json`
//! without re-blessing it:
//!
//! 1. Adding a `save_trace` stage to the golden spec leaves the
//!    report bytes untouched — persistence is a pure side effect.
//! 2. Re-running the analysis from the saved file (mapped, and again
//!    with the heap fallback) reproduces the golden fit, validation,
//!    and prediction blocks byte-for-byte. The `spec`/`world` blocks
//!    legitimately differ — a saved trace is post-sanitization, so
//!    the reload run has an external source and no pre-sanitization
//!    host figures — which is why the comparison is per stage block,
//!    not whole-file.

#![allow(clippy::unwrap_used)]

use resmodel::core::fit::FitConfig;
use resmodel::pipeline::{Pipeline, StageTimings};
use resmodel::popsim::Scenario;
use resmodel::trace::SimDate;
use serde_json::Value;
use std::path::PathBuf;

const GOLDEN_PATH: &str = "tests/golden/steady_state_report.json";

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "resmodel-persist-{}-{name}.rmt",
        std::process::id()
    ))
}

/// The golden pipeline (see `tests/golden_pipeline.rs`), optionally
/// persisting its sanitized trace to `save`.
fn golden_pipeline(save: Option<&PathBuf>) -> Pipeline {
    let mut p = Pipeline::from_scenario(Scenario::steady_state(20110620))
        .max_hosts(12_000)
        .sanitize_default()
        .fit(FitConfig::yearly(2007, 2010))
        .validate_seeded(vec![SimDate::from_year(2010.5)], 7)
        .predict(vec![SimDate::from_year(2012.0), SimDate::from_year(2014.0)]);
    if let Some(path) = save {
        p = p.save_trace(path);
    }
    p
}

/// The same analysis stages, sourced from a saved trace file.
fn reload_pipeline(path: &PathBuf) -> Pipeline {
    Pipeline::from_trace_file(path)
        .expect("saved trace maps")
        .fit(FitConfig::yearly(2007, 2010))
        .validate_seeded(vec![SimDate::from_year(2010.5)], 7)
        .predict(vec![SimDate::from_year(2012.0), SimDate::from_year(2014.0)])
}

/// A stage block of the golden file, pretty-printed on its own.
fn stage(tree: &Value, key: &str) -> String {
    serde_json::to_string_pretty(&tree[key]).unwrap()
}

#[test]
fn save_stage_does_not_perturb_the_golden_bytes() {
    let path = scratch("save");
    let mut report = golden_pipeline(Some(&path)).run().unwrap();
    report.timing = StageTimings::default();
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file exists");
    assert_eq!(
        report.to_json_pretty().unwrap(),
        golden,
        "saving the trace must be invisible in the report"
    );
    assert!(path.is_file(), "the trace was persisted");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mapped_reload_reproduces_the_golden_stage_blocks() {
    let path = scratch("reload");
    golden_pipeline(Some(&path)).run().unwrap();

    let golden: Value =
        serde_json::from_str(&std::fs::read_to_string(GOLDEN_PATH).unwrap()).unwrap();

    // Mapped reload.
    let mut report = reload_pipeline(&path).run().unwrap();
    report.timing = StageTimings::default();
    let reloaded: Value = serde_json::from_str(&report.to_json_pretty().unwrap()).unwrap();
    for key in ["fit", "validation", "predictions"] {
        assert_eq!(
            stage(&reloaded, key),
            stage(&golden, key),
            "mapped `{key}` block drifted from the golden report"
        );
    }
    assert_eq!(reloaded["world"]["hosts"], golden["world"]["hosts"]);

    // Heap fallback reload: same file, no mmap syscall.
    std::env::set_var("RESMODEL_NO_MMAP", "1");
    let mut report = reload_pipeline(&path).run().unwrap();
    std::env::remove_var("RESMODEL_NO_MMAP");
    report.timing = StageTimings::default();
    let heap: Value = serde_json::from_str(&report.to_json_pretty().unwrap()).unwrap();
    for key in ["fit", "validation", "predictions"] {
        assert_eq!(
            stage(&heap, key),
            stage(&golden, key),
            "heap-fallback `{key}` block drifted from the golden report"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// Out-of-core smoke at the paper's full-fleet order of magnitude:
/// a million-host trace is saved once and analyzed entirely through
/// the mapped file. Ignored by default (several hundred MB of scratch
/// and minutes of CPU); run with `cargo test -- --ignored`.
#[test]
#[ignore = "1M-host out-of-core smoke; expensive"]
fn million_host_trace_round_trips_out_of_core() {
    let path = scratch("million");
    let report = Pipeline::from_scenario(Scenario::steady_state(42))
        .max_hosts(1_000_000)
        .sanitize_default()
        .fit(FitConfig::yearly(2007, 2010))
        .save_trace(&path)
        .run()
        .unwrap();

    let reloaded = Pipeline::from_trace_file(&path)
        .unwrap()
        .fit(FitConfig::yearly(2007, 2010))
        .run()
        .unwrap();
    assert_eq!(reloaded.world.hosts, report.world.hosts);
    assert_eq!(
        serde_json::to_string_pretty(&reloaded.fit),
        serde_json::to_string_pretty(&report.fit),
        "fit from the mapped million-host file must match regeneration"
    );
    let _ = std::fs::remove_file(&path);
}
