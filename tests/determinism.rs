//! Reproducibility guarantees across the whole workspace: identical
//! seeds must give bitwise-identical traces, fits and generated
//! populations.

use resmodel::prelude::*;

#[test]
fn world_simulation_is_deterministic() {
    let a = simulate(&WorldParams::with_scale(0.0008, 31));
    let b = simulate(&WorldParams::with_scale(0.0008, 31));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.hosts().iter().zip(b.hosts()) {
        assert_eq!(x, y);
    }
}

#[test]
fn fit_is_deterministic() {
    let trace = simulate(&WorldParams::with_scale(0.0008, 32));
    let r1 = fit_host_model(&trace, &FitConfig::default()).expect("fit");
    let r2 = fit_host_model(&trace, &FitConfig::default()).expect("fit");
    for (a, b) in r1.core_laws.iter().zip(&r2.core_laws) {
        assert_eq!(a.fit.a, b.fit.a);
        assert_eq!(a.fit.b, b.fit.b);
    }
    assert_eq!(r1.correlation, r2.correlation);
}

#[test]
fn generation_is_deterministic_per_seed_and_date() {
    let model = HostModel::paper();
    let d = SimDate::from_year(2010.0);
    assert_eq!(
        model.generate_population(d, 100, 5),
        model.generate_population(d, 100, 5)
    );
    assert_ne!(
        model.generate_population(d, 100, 5),
        model.generate_population(d, 100, 6)
    );
    // Different dates use different substreams even with the same seed.
    assert_ne!(
        model.generate_population(SimDate::from_year(2009.0), 100, 5),
        model.generate_population(d, 100, 5)
    );
}

#[test]
fn baselines_are_deterministic() {
    let d = SimDate::from_year(2010.0);
    let n = NormalModel::paper_like();
    assert_eq!(
        n.generate_population(d, 50, 1),
        n.generate_population(d, 50, 1)
    );
    let g = GridModel::paper_like();
    assert_eq!(
        g.generate_population(d, 50, 1),
        g.generate_population(d, 50, 1)
    );
}

#[test]
fn csv_roundtrip_preserves_all_queries() {
    let trace = simulate(&WorldParams::with_scale(0.0005, 33));
    let mut buf = Vec::new();
    resmodel::trace::csv::write_trace(&trace, &mut buf).expect("write");
    let back = resmodel::trace::csv::read_trace(buf.as_slice()).expect("read");
    assert_eq!(trace.len(), back.len());
    for &year in &[2007.0, 2009.0, 2010.5] {
        let d = SimDate::from_year(year);
        assert_eq!(
            trace.active_count(d),
            back.active_count(d),
            "active at {year}"
        );
        let p1 = trace.population_at(d);
        let p2 = back.population_at(d);
        assert_eq!(p1.len(), p2.len());
        for (a, b) in p1.iter().zip(&p2) {
            assert_eq!(a.cores, b.cores);
            assert!((a.whetstone_mips - b.whetstone_mips).abs() < 1e-9);
        }
    }
}
