//! Integration tests for the `resmodeld` serving layer: the
//! concurrent-stampede guarantee (N identical in-flight requests →
//! exactly one fit, every body byte-identical to the committed golden
//! report) and the wire protocol's failure modes (malformed payloads,
//! oversized and truncated frames).

#![allow(clippy::unwrap_used)]

use resmodel::core::fit::FitConfig;
use resmodel::obs::Collector;
use resmodel::pipeline::{Pipeline, PipelineSpec, SourceSpec};
use resmodel::popsim::Scenario;
use resmodel::trace::SimDate;
use resmodel_svc::proto::{self, FrameError};
use resmodel_svc::{serve_tcp, Client, Endpoint, Request, Response, ServerConfig};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// The exact spec behind `tests/golden/steady_state_report.json` (see
/// `tests/golden_pipeline.rs`) — the service must replay that file
/// byte-for-byte.
fn golden_spec() -> PipelineSpec {
    Pipeline::from_scenario(Scenario::steady_state(20110620))
        .max_hosts(12_000)
        .sanitize_default()
        .fit(FitConfig::yearly(2007, 2010))
        .validate_seeded(vec![SimDate::from_year(2010.5)], 7)
        .predict(vec![SimDate::from_year(2012.0), SimDate::from_year(2014.0)])
        .spec()
        .clone()
}

/// A cheap spec for protocol-level tests: no fit, 300 hosts.
fn tiny_spec() -> PipelineSpec {
    PipelineSpec {
        source: SourceSpec::Scenario {
            scenario: Scenario::steady_state(7),
            max_hosts: 300,
        },
        sanitize: None,
        fit: None,
        validate: None,
        predict: None,
        dispatch: None,
    }
}

#[test]
fn concurrent_stampede_fits_once_and_replays_the_golden_bytes() {
    const CLIENTS: usize = 8;

    let obs = Collector::new();
    let server = serve_tcp("127.0.0.1:0", ServerConfig::default(), &obs).unwrap();
    let addr = server.tcp_addr().unwrap().to_string();
    let spec = golden_spec();

    let replies: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = addr.clone();
                let spec = spec.clone();
                scope.spawn(move || Client::tcp(addr).run_pipeline(&spec).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Exactly one request computed; every other rode the per-key
    // once-cell. The obs counters are authoritative (the `cached` flag
    // on the one computing reply is false, but scheduling decides
    // which).
    let metrics = obs.snapshot();
    assert_eq!(
        metrics.counter("svc.cache.misses"),
        Some(1),
        "exactly one miss"
    );
    assert_eq!(
        metrics.counter("svc.cache.hits"),
        Some((CLIENTS - 1) as u64),
        "everyone else hits"
    );
    assert_eq!(
        metrics.counter("pipeline.runs"),
        Some(1),
        "the expensive fit ran exactly once for {CLIENTS} concurrent requests"
    );
    assert_eq!(
        replies.iter().filter(|r| !r.cached).count(),
        1,
        "exactly one reply reports the cold run"
    );

    // Byte-exact replay: every body equals the committed golden file.
    let golden = std::fs::read_to_string("tests/golden/steady_state_report.json").unwrap();
    let hash = replies[0].spec_hash.clone().unwrap();
    for reply in &replies {
        assert_eq!(reply.spec_hash.as_deref(), Some(hash.as_str()));
        assert_eq!(
            reply.body_pretty(),
            golden,
            "cache replay must be byte-identical to the golden report"
        );
    }

    server.join();
}

#[test]
fn malformed_payloads_answer_an_error_and_keep_the_connection() {
    let obs = Collector::new();
    let server = serve_tcp("127.0.0.1:0", ServerConfig::default(), &obs).unwrap();
    let addr = server.tcp_addr().unwrap();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Garbage bytes inside a well-formed frame: the frame boundary
    // holds, so the server answers and the connection survives.
    proto::write_frame(&mut stream, b"this is not json").unwrap();
    let payload = proto::read_frame(&mut stream).unwrap().unwrap();
    let response: Response = serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(!response.ok);
    assert_eq!(response.endpoint, "?");
    assert!(response.error.unwrap().contains("does not parse"));

    // Same connection, now a valid request: still served.
    proto::send(&mut stream, &Request::bare(Endpoint::Stats)).unwrap();
    let payload = proto::read_frame(&mut stream).unwrap().unwrap();
    let response: Response = serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(response.ok, "connection survives a malformed payload");

    server.join();
}

#[test]
fn oversized_length_prefixes_answer_an_error_and_close() {
    let obs = Collector::new();
    let server = serve_tcp("127.0.0.1:0", ServerConfig::default(), &obs).unwrap();
    let addr = server.tcp_addr().unwrap();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Announce a 4 GiB frame. The payload is never read, so the stream
    // cannot be resynchronized: expect one error frame, then EOF.
    stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
    stream.flush().unwrap();
    let payload = proto::read_frame(&mut stream).unwrap().unwrap();
    let response: Response = serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(!response.ok);
    assert!(response.error.unwrap().contains("exceeds"));
    assert!(
        proto::read_frame(&mut stream).unwrap().is_none(),
        "server closes after an oversized announcement"
    );

    // The server itself is unharmed: a fresh connection is served.
    let client = Client::tcp(addr.to_string());
    assert!(client.stats().is_ok());

    server.join();
}

#[test]
fn truncated_frames_close_without_a_response() {
    let obs = Collector::new();
    let server = serve_tcp("127.0.0.1:0", ServerConfig::default(), &obs).unwrap();
    let addr = server.tcp_addr().unwrap();

    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        // Claim 100 payload bytes, deliver 5, close the write half.
        stream.write_all(&100u32.to_be_bytes()).unwrap();
        stream.write_all(b"stub!").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        match proto::read_frame(&mut stream) {
            Ok(None) => {}
            Err(FrameError::Truncated | FrameError::Io(_)) => {}
            other => panic!("expected a silent close, got {other:?}"),
        }
    }

    // Later connections are unaffected.
    let client = Client::tcp(addr.to_string());
    let reply = client.run_pipeline(&tiny_spec()).unwrap();
    assert!(!reply.cached);

    server.join();
}

#[test]
fn over_limit_connections_get_a_typed_busy_frame() {
    let obs = Collector::new();
    let config = ServerConfig {
        max_conns: Some(1),
        ..ServerConfig::default()
    };
    let server = serve_tcp("127.0.0.1:0", config, &obs).unwrap();
    let addr = server.tcp_addr().unwrap();

    // Occupy the single slot, completing a round-trip so the handler
    // thread is provably alive before the second connection arrives.
    let mut held = TcpStream::connect(addr).unwrap();
    held.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    proto::send(&mut held, &Request::bare(Endpoint::Stats)).unwrap();
    let payload = proto::read_frame(&mut held).unwrap().unwrap();
    let response: Response = serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(response.ok);

    // The over-limit connection gets the typed frame, then the close —
    // not a silent hangup.
    let mut refused = TcpStream::connect(addr).unwrap();
    refused
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let payload = proto::read_frame(&mut refused).unwrap().unwrap();
    let response: Response = serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(!response.ok);
    assert_eq!(response.code.as_deref(), Some("busy"));
    assert!(response.error.unwrap().contains("connection limit"));
    assert!(
        proto::read_frame(&mut refused).unwrap().is_none(),
        "refused connection is closed after the busy frame"
    );

    // Releasing the slot readmits peers once the handler notices the
    // EOF (within its poll interval).
    drop(held);
    let mut served = false;
    for _ in 0..400 {
        let mut retry = TcpStream::connect(addr).unwrap();
        retry
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        proto::send(&mut retry, &Request::bare(Endpoint::Stats)).unwrap();
        let payload = proto::read_frame(&mut retry).unwrap().unwrap();
        let response: Response =
            serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
        if response.ok {
            served = true;
            break;
        }
        assert_eq!(response.code.as_deref(), Some("busy"));
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(served, "slot is reusable after the held connection drops");

    server.join();
}

#[test]
fn failed_requests_dump_flight_events_with_the_span_path() {
    let dump = std::env::temp_dir().join(format!("resmodel_svc_flight_{}.log", std::process::id()));
    let _ = std::fs::remove_file(&dump);

    let obs = Collector::new();
    let config = ServerConfig {
        flight_out: Some(dump.clone()),
        ..ServerConfig::default()
    };
    let server = serve_tcp("127.0.0.1:0", config, &obs).unwrap();
    let addr = server.tcp_addr().unwrap().to_string();

    // `tiny_spec` carries no fit stage, so `predict` fails inside the
    // handler — an application error, not a protocol one. The dump is
    // written before the error frame, so the reply orders the check.
    let client = Client::tcp(addr).with_request_prefix("boom");
    let err = client.predict(&tiny_spec(), &[2012.0]);
    assert!(err.is_err(), "predict without a fit stage must fail");

    client.shutdown().unwrap();
    server.join();

    let text = std::fs::read_to_string(&dump).unwrap();
    assert!(
        text.contains("FLIGHT request=boom-1"),
        "dump names the client-assigned request id:\n{text}"
    );
    assert!(
        text.contains("path=svc/predict"),
        "dump carries the failing request's span path:\n{text}"
    );
    let _ = std::fs::remove_file(&dump);
}

#[cfg(unix)]
#[test]
fn uds_round_trip_hits_the_cache_on_the_second_query() {
    let path = std::env::temp_dir().join(format!("resmodel_svc_test_{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let obs = Collector::new();
    let server = resmodel_svc::serve_uds(&path, ServerConfig::default(), &obs).unwrap();
    let client = Client::uds(&path);

    let cold = client.run_pipeline(&tiny_spec()).unwrap();
    let warm = client.run_pipeline(&tiny_spec()).unwrap();
    assert!(!cold.cached && warm.cached);
    assert_eq!(cold.body_pretty(), warm.body_pretty());
    assert_eq!(cold.spec_hash, warm.spec_hash);

    // The stats body carries the cache figures the CI smoke greps for.
    let stats = client.stats().unwrap();
    assert_eq!(stats.body["cache"]["hits"].as_u64(), Some(1));
    assert_eq!(stats.body["cache"]["misses"].as_u64(), Some(1));

    // An orderly wire shutdown removes the socket file.
    client.shutdown().unwrap();
    server.wait();
    assert!(!path.exists(), "join removes the socket file");
}
