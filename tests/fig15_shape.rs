//! Integration test of the paper's Fig 15 claim: the correlated model
//! tracks the actual host population's utility better than the
//! uncorrelated normal model (especially for multicore-sensitive
//! applications) and better than the Grid model for disk-bound P2P.

use resmodel::prelude::*;
use resmodel::trace::sanitize::{sanitize, SanitizeRules};

#[test]
fn fig15_model_ordering_holds() {
    let raw = simulate(&WorldParams::with_scale(0.002, 555));
    let trace = sanitize(&raw, SanitizeRules::default()).trace;

    let fit_cfg = FitConfig::default();
    let correlated = fit_host_model(&trace, &fit_cfg)
        .expect("correlated fit")
        .model;
    let normal = NormalModel::fit(&trace, &fit_cfg.sample_dates).expect("normal fit");
    let grid = GridModel::fit(&trace, &fit_cfg.sample_dates).expect("grid fit");
    let generators: Vec<&dyn HostGenerator> = vec![&correlated, &normal, &grid];

    // Three months of 2010 keep the test quick; Fig 15 uses nine.
    let config = UtilityExperimentConfig {
        dates: vec![
            SimDate::from_year(2010.0),
            SimDate::from_year(2010.25),
            SimDate::from_year(2010.5),
        ],
        apps: AppProfile::ALL.to_vec(),
        seed: 9,
    };
    let results = run_utility_experiment(&trace, &generators, &config).expect("experiment runs");
    let series = |label: &str| {
        results
            .iter()
            .find(|s| s.model == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
    };
    let (corr, norm, grid) = (series("correlated"), series("normal"), series("grid"));

    // Application indices in AppProfile::ALL order.
    const SETI: usize = 0;
    const FOLDING: usize = 1;
    const CLIMATE: usize = 2;
    const P2P: usize = 3;

    // Headline numbers: the correlated model stays within ~15% of the
    // actual utility everywhere (paper: 0-10%).
    for app in [SETI, FOLDING, CLIMATE, P2P] {
        assert!(
            corr.mean_of(app) < 15.0,
            "correlated model app {app}: {:.1}%",
            corr.mean_of(app)
        );
    }

    // Fig 15 orderings. The starkest normal-model failure in our
    // substrate is SETI@home (whetstone-tail sensitive); Folding@home
    // and Climate Prediction must at least not be lost to the normal
    // model beyond sampling noise (the paper's gap there is larger
    // because its real population is further from normal marginals —
    // see EXPERIMENTS.md).
    assert!(
        corr.mean_of(SETI) < norm.mean_of(SETI),
        "correlated {:.1}% should beat normal {:.1}% on SETI@home",
        corr.mean_of(SETI),
        norm.mean_of(SETI)
    );
    assert!(
        corr.mean_of(FOLDING) < norm.mean_of(FOLDING) + 1.5,
        "correlated {:.1}% should not lose to normal {:.1}% on Folding@home",
        corr.mean_of(FOLDING),
        norm.mean_of(FOLDING)
    );
    assert!(
        corr.mean_of(CLIMATE) < norm.mean_of(CLIMATE) + 1.5,
        "correlated {:.1}% should not lose to normal {:.1}% on Climate",
        corr.mean_of(CLIMATE),
        norm.mean_of(CLIMATE)
    );

    // The Grid model's exponential *total*-disk law overshoots P2P
    // utility dramatically (paper: 46-57% difference).
    assert!(
        grid.mean_of(P2P) > 25.0,
        "grid model should badly overestimate P2P, got {:.1}%",
        grid.mean_of(P2P)
    );
    assert!(
        grid.mean_of(P2P) > 2.0 * corr.mean_of(P2P).max(1.0),
        "grid P2P error {:.1}% should dwarf correlated {:.1}%",
        grid.mean_of(P2P),
        corr.mean_of(P2P)
    );
}
