//! End-to-end integration test: simulate the measured world, sanitize,
//! fit the correlated model, validate what it generates, and check the
//! paper's headline claims hold on the refitted model.

use resmodel::core::predict::{multicore_prediction, paper_16_core_extension};
use resmodel::core::validate::{compare_populations, generated_correlation_matrix};
use resmodel::prelude::*;
use resmodel::trace::sanitize::{sanitize, SanitizeRules};

fn world_trace() -> Trace {
    let raw = simulate(&WorldParams::with_scale(0.002, 2024));
    sanitize(&raw, SanitizeRules::default()).trace
}

#[test]
fn full_pipeline_world_to_validated_model() {
    let trace = world_trace();
    assert!(trace.len() > 4000, "world too small: {}", trace.len());

    // --- Fit (Sections V-C..V-G) ---
    let report = fit_host_model(&trace, &FitConfig::default()).expect("fit succeeds");

    // Core ratio laws decay (Table IV: all b < 0) and fit well.
    for row in &report.core_laws {
        assert!(row.fit.b < 0.0, "{}: b = {}", row.label, row.fit.b);
        assert!(row.fit.r < -0.7, "{}: r = {}", row.label, row.fit.r);
    }

    // Benchmark and disk moment laws grow (Table VI: all b > 0).
    for row in &report.moment_laws {
        assert!(row.fit.b > 0.0, "{}: b = {}", row.label, row.fit.b);
        assert!(row.fit.r > 0.7, "{}: r = {}", row.label, row.fit.r);
    }

    // Table III structure: cores-memory strongly correlated, benchmarks
    // strongly correlated, disk uncorrelated.
    let c = &report.correlation;
    assert!(c.get(0, 1) > 0.4, "cores-mem r = {}", c.get(0, 1));
    assert!(c.get(3, 4) > 0.45, "whet-dhry r = {}", c.get(3, 4));
    for j in 0..5 {
        assert!(c.get(5, j).abs() < 0.25, "disk col {j}: {}", c.get(5, j));
    }

    // --- Generate and validate (Section VI: Fig 12 + Table VIII) ---
    let date = SimDate::from_year(2010.5);
    let actual: Vec<GeneratedHost> = trace
        .population_at(date)
        .iter()
        .map(GeneratedHost::from)
        .collect();
    let generated = report.model.generate_population(date, actual.len(), 77);
    let cmp = compare_populations(&generated, &actual).expect("populations non-empty");
    for panel in &cmp {
        // The paper reports mean differences of 0.5%-13%; allow up to
        // 30% on the small simulated world.
        assert!(
            panel.mean_diff_fraction < 0.30,
            "{:?}: mean diff {:.3}",
            panel.resource,
            panel.mean_diff_fraction
        );
    }

    let corr = generated_correlation_matrix(&generated).expect("correlations defined");
    assert!(
        corr.get(0, 1) > 0.5,
        "generated cores-mem {}",
        corr.get(0, 1)
    );
    assert!(
        corr.get(3, 4) > 0.35,
        "generated whet-dhry {}",
        corr.get(3, 4)
    );
    for j in 0..5 {
        assert!(corr.get(5, j).abs() < 0.1, "generated disk col {j}");
    }

    // --- Predict (Section VI-C) ---
    let preds = multicore_prediction(&report.model, &[SimDate::from_year(2014.0)])
        .expect("prediction succeeds");
    let p2014 = preds[0];
    assert!(p2014.one_core < 0.12, "1-core 2014: {}", p2014.one_core);
    assert!(
        p2014.mean_cores > 3.0 && p2014.mean_cores < 6.5,
        "mean cores 2014: {}",
        p2014.mean_cores
    );
}

#[test]
fn sanitization_removes_all_corruption_and_little_else() {
    let raw = simulate(&WorldParams::with_scale(0.002, 99));
    let report = sanitize(&raw, SanitizeRules::default());
    assert!(
        report.discarded_fraction < 0.005,
        "too much discarded: {}",
        report.discarded_fraction
    );
    // After sanitization every remaining snapshot respects the bounds.
    let rules = SanitizeRules::default();
    for h in report.trace.hosts() {
        assert!(!rules.is_corrupt(h));
    }
}

#[test]
fn lifetime_analysis_matches_ground_truth() {
    let trace = world_trace();
    let w = resmodel::core::fit::lifetime_weibull(&trace, SimDate::from_year(2010.4))
        .expect("enough lifetimes");
    // Ground truth k = 0.58; right-censoring at the window end biases a
    // little.
    assert!(w.shape() > 0.45 && w.shape() < 0.75, "k = {}", w.shape());
    // Decreasing dropout rate — the paper's qualitative claim.
    assert!(w.shape() < 1.0);
}

#[test]
fn extension_point_for_prediction_is_stable() {
    let (tier, law) = paper_16_core_extension();
    let model = HostModel::paper()
        .with_extended_cores(tier, law)
        .expect("valid extension");
    let mean = model.cores().mean_value(SimDate::from_year(2014.0));
    assert!(
        (mean - 4.6).abs() < 0.2,
        "paper predicts 4.6 cores, got {mean}"
    );
}
