//! The dispatch determinism contract, mirroring the sweep
//! thread-invariance proptest: the same `(fleet, workload, policy)`
//! triple produces a byte-identical [`DispatchReport`] JSON
//! (wall-clock fields zeroed) regardless of the rayon thread count.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use resmodel::popsim::{engine, ArrivalLaw, EngineReport, Scenario};
use resmodel::sched::{dispatch, DispatchPolicy, WorkloadSpec};

fn small_fleet(seed: u64, hosts: usize) -> EngineReport {
    let mut scenario = Scenario::steady_state(seed);
    scenario.max_hosts = hosts;
    scenario.shard_count = 16;
    scenario.arrivals = ArrivalLaw::Exponential {
        base_per_day: 6.0,
        growth_per_year: 0.18,
    };
    engine::run(&scenario).unwrap()
}

/// Run a dispatch under a fixed-size rayon pool and return the
/// deterministic (timing-zeroed) report JSON.
fn run_on_threads(
    fleet: &EngineReport,
    workload: &WorkloadSpec,
    policy: DispatchPolicy,
    threads: usize,
) -> String {
    let mut report = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(|| dispatch(fleet, workload, policy).unwrap());
    report.zero_timings();
    report.to_json_pretty().unwrap()
}

/// Random small workloads over every preset shape and policy.
fn case_strategy() -> impl Strategy<Value = (u64, usize, WorkloadSpec, DispatchPolicy)> {
    (
        0u64..1_000_000, // fleet seed
        200usize..500,   // fleet size
        0usize..WorkloadSpec::PRESETS.len(),
        0u64..1_000_000, // workload seed
        100usize..600,   // job budget
        0usize..DispatchPolicy::ALL.len(),
        0u8..2, // checkpointing
    )
        .prop_map(
            |(fseed, hosts, preset, wseed, jobs, policy, checkpointing)| {
                let mut workload = WorkloadSpec::preset(WorkloadSpec::PRESETS[preset])
                    .expect("built-in preset")
                    .with_job_budget(jobs);
                workload.seed = wseed;
                workload.shard_count = 16;
                workload.checkpointing = checkpointing == 1;
                (fseed, hosts, workload, DispatchPolicy::ALL[policy])
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn one_thread_equals_many_threads(case in case_strategy()) {
        let (fseed, hosts, workload, policy) = case;
        let fleet = small_fleet(fseed, hosts);
        prop_assert_eq!(
            run_on_threads(&fleet, &workload, policy, 1),
            run_on_threads(&fleet, &workload, policy, 8)
        );
    }
}

#[test]
fn dispatch_preset_grid_is_thread_count_invariant() {
    // The CI dispatch configuration itself — the sweep grid of
    // workloads × policies — byte-stable at any pool size, so the
    // uploaded artifacts are machine-independent modulo wall clocks.
    let mut spec = resmodel::sweep::SweepSpec::preset("dispatch").expect("built-in preset");
    spec.fleet_sizes = vec![1_000];
    let run = |threads: usize| {
        let mut report = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| spec.run().unwrap());
        report.zero_timings();
        report.to_json_pretty().unwrap()
    };
    let single = run(1);
    assert_eq!(single, run(8));
    // And re-running the same spec reproduces the same bytes.
    assert_eq!(single, run(1));
}

/// A 100k-host full-scale thread-invariance run: byte-identical
/// report at 1, 2 and max threads. The job budget scales through
/// `RESMODEL_SMOKE_JOBS` so the same test serves as the default CI
/// smoke (200k jobs, a couple of seconds with the test profile) and
/// the acceptance run (set it to `1000000`, as the CI bench-smoke
/// job does in release mode).
fn full_scale_case(jobs: usize) {
    let mut scenario = Scenario::steady_state(7);
    scenario.max_hosts = 100_000;
    scenario.arrivals = ArrivalLaw::Exponential {
        base_per_day: 120.0,
        growth_per_year: 0.18,
    };
    let fleet = engine::run(&scenario).unwrap();
    let mut workload = WorkloadSpec::preset("mixed")
        .expect("built-in preset")
        .with_job_budget(jobs);
    workload.start = resmodel::trace::SimDate::from_year(2007.0);

    let single = run_on_threads(&fleet, &workload, DispatchPolicy::EarliestFinish, 1);
    let dual = run_on_threads(&fleet, &workload, DispatchPolicy::EarliestFinish, 2);
    let max = rayon::current_num_threads().max(2);
    let many = run_on_threads(&fleet, &workload, DispatchPolicy::EarliestFinish, max);
    assert_eq!(single, dual, "1 vs 2 threads");
    assert_eq!(single, many, "1 vs {max} threads");
}

#[test]
fn full_scale_report_is_byte_identical_at_1_2_and_max_threads() {
    let jobs = std::env::var("RESMODEL_SMOKE_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    full_scale_case(jobs);
}

/// The production-traffic contract: 10M jobs stream through the
/// engine with a byte-identical report at every thread count — and
/// peak memory stays O(segment), not O(total jobs). Too heavy for the
/// CI loop; run it with
///
/// ```text
/// cargo test --release --test dispatch_determinism -- --ignored
/// ```
#[test]
#[ignore = "~10 s full-scale run in release mode; exercised manually and per release"]
fn ten_million_job_report_is_byte_identical_at_1_2_and_max_threads() {
    full_scale_case(10_000_000);
}

#[test]
fn replication_places_replicas_on_distinct_hosts_deterministically() {
    let fleet = small_fleet(11, 400);
    let workload = WorkloadSpec::preset("mixed")
        .expect("built-in preset")
        .with_job_budget(400);
    for policy in DispatchPolicy::ALL {
        let a = dispatch(&fleet, &workload, policy).unwrap();
        let b = dispatch(&fleet, &workload, policy).unwrap();
        let (mut za, mut zb) = (a.clone(), b);
        za.zero_timings();
        zb.zero_timings();
        assert_eq!(za, zb, "{policy}: re-run differs");
        // The replicated family dispatches more replicas than jobs.
        assert!(
            a.totals.replicas > a.totals.jobs - a.totals.unassigned,
            "{policy}: replication did not fan out"
        );
    }
}
