//! The observability determinism contract, one layer above
//! `sweep_determinism`: collecting metrics must not perturb the sweep
//! (byte-identical zeroed report), and the deterministic slice of the
//! [`MetricsReport`] — counters and histogram summaries, which record
//! only simulated quantities — must be bitwise identical at any rayon
//! thread count. Wall-clock readings live only in spans and gauges,
//! which are excluded from the fingerprint.

#![allow(clippy::unwrap_used)]

use resmodel::obs::{Collector, MetricsReport};
use resmodel::pipeline::DataPath;
use resmodel::sweep::{SweepReport, SweepSpec};

/// Run a spec under a fixed-size rayon pool with a live collector,
/// returning the timing-zeroed report JSON and the metrics snapshot.
fn run_on_threads(spec: &SweepSpec, threads: usize) -> (String, MetricsReport) {
    let obs = Collector::new();
    let mut report: SweepReport = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(|| spec.run_collected(DataPath::Columnar, &obs).unwrap());
    report.zero_timings();
    (report.to_json_pretty().unwrap(), obs.snapshot())
}

fn small_spec() -> SweepSpec {
    let mut spec = SweepSpec::preset("replicates").expect("built-in preset");
    spec.fleet_sizes = vec![250];
    spec.replicates = vec![1, 2];
    spec
}

#[test]
fn metrics_fingerprint_is_thread_count_invariant() {
    let spec = small_spec();
    let (report_1, metrics_1) = run_on_threads(&spec, 1);
    let (report_8, metrics_8) = run_on_threads(&spec, 8);

    // The report itself is untouched by observation at any pool size.
    assert_eq!(report_1, report_8);

    // Counters and histograms are bitwise identical: sharded
    // accumulation plus order-invariant histogram merges erase the
    // scheduling order.
    assert_eq!(
        metrics_1.deterministic_fingerprint(),
        metrics_8.deterministic_fingerprint()
    );

    // The fingerprint is non-trivial: real counters and at least one
    // histogram made it through.
    let (counters, histograms) = metrics_1.deterministic_fingerprint();
    assert!(counters.iter().any(|(k, v)| k == "sweep.jobs" && *v > 0));
    assert!(counters.iter().any(|(k, v)| k == "pipeline.runs" && *v > 0));
    assert!(!histograms.is_empty());
}

#[test]
fn observation_does_not_perturb_the_report() {
    // The same spec run bare (the sweep_determinism path) and observed
    // produces byte-identical zeroed JSON.
    let spec = small_spec();
    let mut bare = spec.run().unwrap();
    bare.zero_timings();
    let (observed, metrics) = run_on_threads(&spec, 4);
    assert_eq!(bare.to_json_pretty().unwrap(), observed);

    // And the snapshot round-trips through its own JSON.
    let json = metrics.to_json_pretty().unwrap();
    let back = MetricsReport::from_json(&json).unwrap();
    assert_eq!(
        back.deterministic_fingerprint(),
        metrics.deterministic_fingerprint()
    );
}
