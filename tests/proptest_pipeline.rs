//! Property-based guarantees of the pipeline API:
//!
//! 1. **Spec round-trip** — every pipeline spec survives JSON
//!    serialization unchanged, whatever combination of source and
//!    stages it carries.
//! 2. **Report round-trip** — a hand-assembled report with arbitrary
//!    numeric content re-serializes to the identical JSON after a
//!    parse (the report's own round-trip invariant; no PartialEq on
//!    the embedded model, so byte equality is the contract).

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use resmodel::core::fit::FitConfig;
use resmodel::pipeline::{
    DispatchSpec, PipelineReport, PipelineSpec, PredictSpec, SourceSpec, StageTimings,
    ValidateSpec, WorldSummary,
};
use resmodel::popsim::Scenario;
use resmodel::sched::{DispatchPolicy, WorkloadSpec};
use resmodel::trace::sanitize::SanitizeRules;
use resmodel::trace::SimDate;

fn source_strategy() -> impl Strategy<Value = SourceSpec> {
    prop_oneof![
        (1e-4..1.0f64, 0u64..u64::MAX).prop_map(|(scale, seed)| SourceSpec::Boinc { scale, seed }),
        (0u64..1_000_000, 0usize..4, 0usize..50_000).prop_map(|(seed, which, max_hosts)| {
            let scenario = match which {
                0 => Scenario::steady_state(seed),
                1 => Scenario::flash_crowd(seed),
                2 => Scenario::gpu_wave(seed),
                _ => Scenario::market_shift(seed),
            };
            SourceSpec::Scenario {
                scenario,
                max_hosts,
            }
        }),
        Just(SourceSpec::External),
    ]
}

fn sanitize_strategy() -> impl Strategy<Value = Option<SanitizeRules>> {
    proptest::option::of((2u32..512, 1e4..1e6f64, 1e4..1e6f64).prop_map(
        |(max_cores, max_whet, max_mem)| SanitizeRules {
            max_cores,
            max_whetstone_mips: max_whet,
            max_dhrystone_mips: max_whet * 2.0,
            max_memory_mb: max_mem,
            max_avail_disk_gb: 1e4,
        },
    ))
}

fn dates_strategy() -> impl Strategy<Value = Vec<SimDate>> {
    proptest::collection::vec((2006.0..2020.0f64).prop_map(SimDate::from_year), 1..6)
}

fn fit_strategy() -> impl Strategy<Value = Option<FitConfig>> {
    proptest::option::of((dates_strategy(), 0.05..0.3f64).prop_map(
        |(sample_dates, pcm_tolerance)| FitConfig {
            sample_dates,
            pcm_tolerance,
        },
    ))
}

fn dispatch_strategy() -> impl Strategy<Value = Option<DispatchSpec>> {
    proptest::option::of(
        (0usize..3, 0usize..4, 0u64..u64::MAX, 24.0..2000.0f64).prop_map(
            |(preset, policy, seed, horizon)| {
                let mut workload =
                    WorkloadSpec::preset(WorkloadSpec::PRESETS[preset]).expect("built-in preset");
                workload.seed = seed;
                workload.horizon_hours = horizon;
                DispatchSpec {
                    workload,
                    policy: DispatchPolicy::ALL[policy],
                }
            },
        ),
    )
}

fn spec_strategy() -> impl Strategy<Value = PipelineSpec> {
    (
        source_strategy(),
        sanitize_strategy(),
        fit_strategy(),
        proptest::option::of(
            (dates_strategy(), 0u64..u64::MAX)
                .prop_map(|(dates, seed)| ValidateSpec { dates, seed }),
        ),
        proptest::option::of(dates_strategy().prop_map(|dates| PredictSpec { dates })),
        dispatch_strategy(),
    )
        .prop_map(
            |(source, sanitize, fit, validate, predict, dispatch)| PipelineSpec {
                source,
                sanitize,
                fit,
                validate,
                predict,
                dispatch,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spec_round_trips_through_json(spec in spec_strategy()) {
        let json = spec.to_json_pretty().unwrap();
        let back = PipelineSpec::from_json(&json).unwrap();
        prop_assert_eq!(&spec, &back);
        // And the round-trip is a fixed point at the byte level too.
        prop_assert_eq!(json, back.to_json_pretty().unwrap());
    }

    #[test]
    fn report_round_trips_through_json(
        spec in spec_strategy(),
        hosts in 0usize..1_000_000,
        discarded in 0usize..1_000,
        timings in proptest::collection::vec(0.0..1e5f64, 6),
    ) {
        let report = PipelineReport {
            spec,
            world: WorldSummary {
                hosts,
                raw_hosts: hosts + discarded,
                discarded,
                discarded_fraction: if hosts + discarded == 0 {
                    0.0
                } else {
                    discarded as f64 / (hosts + discarded) as f64
                },
                start: Some(SimDate::from_year(2005.5)),
                end: None,
            },
            // A full fit stage is exercised by the golden-file test;
            // here the focus is arbitrary numeric content elsewhere.
            fit: None,
            validation: None,
            predictions: None,
            dispatch: None,
            timing: StageTimings {
                build_ms: timings[0],
                sanitize_ms: timings[1],
                fit_ms: timings[2],
                validate_ms: timings[3],
                predict_ms: timings[4],
                dispatch_ms: timings[5],
            },
        };
        let json = report.to_json_pretty().unwrap();
        let back = PipelineReport::from_json(&json).unwrap();
        prop_assert_eq!(json, back.to_json_pretty().unwrap());
    }
}

/// A full run's report (fit + validation + predictions populated)
/// round-trips byte-identically — the non-proptest complement covering
/// the model-bearing branches.
#[test]
fn full_report_round_trips() {
    let report = resmodel::pipeline::Pipeline::from_scenario(Scenario::steady_state(3))
        .max_hosts(12_000)
        .sanitize_default()
        .fit(FitConfig::yearly(2007, 2010))
        .validate(vec![SimDate::from_year(2010.5)])
        .predict(vec![SimDate::from_year(2013.0), SimDate::from_year(2014.0)])
        .run()
        .unwrap();
    let json = report.to_json_pretty().unwrap();
    let back = PipelineReport::from_json(&json).unwrap();
    assert_eq!(json, back.to_json_pretty().unwrap());
    assert!(back.fit.is_some());
    assert_eq!(back.validation.unwrap().len(), 1);
    assert_eq!(back.predictions.unwrap().multicore.len(), 2);
}
