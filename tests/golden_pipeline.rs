//! Golden-file test: a `steady-state` scenario pipeline at a fixed
//! seed produces a byte-stable JSON report.
//!
//! The engine's determinism contract (bitwise-identical fleets at any
//! thread count) plus deterministic JSON rendering make the whole
//! report reproducible; only wall-clock timings vary, so they are
//! zeroed before comparison.
//!
//! To bless a new golden file after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_pipeline
//! ```

#![allow(clippy::unwrap_used)]

use resmodel::core::fit::FitConfig;
use resmodel::pipeline::{Pipeline, PipelineReport, StageTimings};
use resmodel::popsim::Scenario;
use resmodel::trace::SimDate;

const GOLDEN_PATH: &str = "tests/golden/steady_state_report.json";

fn golden_report() -> PipelineReport {
    let mut report = Pipeline::from_scenario(Scenario::steady_state(20110620))
        .max_hosts(12_000)
        .sanitize_default()
        .fit(FitConfig::yearly(2007, 2010))
        .validate_seeded(vec![SimDate::from_year(2010.5)], 7)
        .predict(vec![SimDate::from_year(2012.0), SimDate::from_year(2014.0)])
        .run()
        .expect("golden pipeline runs");
    // Wall-clock timings are the only nondeterministic content.
    report.timing = StageTimings::default();
    report
}

#[test]
fn steady_state_report_is_byte_stable() {
    let json = golden_report().to_json_pretty().unwrap();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file exists (run with UPDATE_GOLDEN=1 to create it)");
    if json != golden {
        // A plain assert_eq! would dump both multi-hundred-KB JSON
        // bodies, scrolling the re-bless instructions out of sight;
        // report just the first differing line and keep the hint at
        // the end where it is read.
        let diff_line = json
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| json.lines().count().min(golden.lines().count()));
        let actual = json.lines().nth(diff_line).unwrap_or("<end of report>");
        let expected = golden.lines().nth(diff_line).unwrap_or("<end of golden>");
        panic!(
            "pipeline report drifted from {GOLDEN_PATH} at line {}:\n  \
             report: {actual}\n  golden: {expected}\n\
             If the change is intentional, re-bless the golden file with:\n  \
             UPDATE_GOLDEN=1 cargo test --test golden_pipeline",
            diff_line + 1,
        );
    }
}

#[test]
fn same_spec_same_bytes_within_process() {
    let a = golden_report().to_json_pretty().unwrap();
    let b = golden_report().to_json_pretty().unwrap();
    assert_eq!(a, b);
}
