//! Integration tests for the load generator and the service-side
//! determinism contract under fire: a fixed load schedule produces the
//! same request multiset at any connection count, and — because the
//! cache's stampede protection makes misses a function of distinct
//! spec keys, not of interleaving — the server's deterministic metrics
//! fingerprint is bitwise identical across thread counts and load
//! levels.

#![allow(clippy::unwrap_used)]

use resmodel::obs::{Collector, HistogramSummary};
use resmodel::sweep::SvcLoadSummary;
use resmodel_svc::{default_spec_pool, run_load, serve_tcp, Client, LoadSpec, ServerConfig};

type Fingerprint = (Vec<(String, u64)>, Vec<HistogramSummary>);

/// Drive one fixed 32-request schedule against a fresh server at the
/// given client/server concurrency; return the server's deterministic
/// fingerprint and the artifact-ready load summary.
fn run_fixture(connections: usize, threads: usize) -> (Fingerprint, SvcLoadSummary) {
    let obs = Collector::new();
    let config = ServerConfig {
        threads: Some(threads),
        ..ServerConfig::default()
    };
    let server = serve_tcp("127.0.0.1:0", config, &obs).unwrap();
    let addr = server.tcp_addr().unwrap().to_string();
    let client = Client::tcp(addr).with_request_prefix("load");

    let spec = LoadSpec::fixed(connections, 32, default_spec_pool());
    let report = run_load(&client, &spec).unwrap();
    assert_eq!(report.requests, 32);
    assert_eq!(report.errors, 0, "the fixture load must be clean");

    client.shutdown().unwrap();
    server.join();

    let metrics = obs.snapshot();
    let summary = report.svc_load_summary(Some(&metrics));
    (metrics.deterministic_fingerprint(), summary)
}

/// The acceptance bar for `bench_sweep/8`: counters and value-domain
/// histograms (wall-clock quarantined) must not depend on how many
/// loadgen connections fired the schedule or how many data-parallel
/// threads served it.
#[test]
fn deterministic_fingerprint_is_invariant_across_threads_and_load() {
    let (light, _) = run_fixture(2, 1);
    let (heavy, _) = run_fixture(8, 4);
    assert_eq!(
        light, heavy,
        "server fingerprint must be bitwise identical across (connections, threads)"
    );
}

#[test]
fn svc_load_summary_accounts_for_every_request() {
    let (_, summary) = run_fixture(2, 1);

    assert_eq!(summary.mode, "fixed");
    assert_eq!(summary.connections, 2);
    assert_eq!(summary.requests, 32);
    assert_eq!(summary.errors, 0);
    assert!(summary.wall_ms > 0.0);
    assert!(summary.served_per_sec > 0.0);
    assert!((0.0..=1.0).contains(&summary.hit_rate));
    assert!(
        summary.slo.is_some(),
        "a summary built from server metrics carries the SLO verdict"
    );

    // Per-endpoint rows partition the totals exactly.
    assert!(!summary.endpoints.is_empty());
    let req_sum: u64 = summary.endpoints.iter().map(|e| e.requests).sum();
    let err_sum: u64 = summary.endpoints.iter().map(|e| e.errors).sum();
    assert_eq!(req_sum, summary.requests);
    assert_eq!(err_sum, summary.errors);
    for ep in &summary.endpoints {
        assert!(
            ep.requests > 0,
            "{}: empty endpoint rows are dropped",
            ep.endpoint
        );
        assert!(
            ep.p50_ms <= ep.p90_ms && ep.p90_ms <= ep.p99_ms && ep.p99_ms <= ep.p999_ms,
            "{}: quantiles must be monotone",
            ep.endpoint
        );
    }
}
