//! Golden-file test: a `steady-state` fleet dispatching the `mixed`
//! workload under the deadline-aware policy at a fixed seed produces a
//! byte-stable JSON report.
//!
//! The dispatch determinism contract (byte-identical reports at any
//! thread count) plus deterministic JSON rendering make the whole
//! report reproducible; only wall-clock timings vary, so they are
//! zeroed before comparison.
//!
//! To bless a new golden file after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_dispatch
//! ```

#![allow(clippy::unwrap_used)]

use resmodel::popsim::{engine, ArrivalLaw, Scenario};
use resmodel::sched::{dispatch, DispatchPolicy, DispatchReport, WorkloadSpec};

const GOLDEN_PATH: &str = "tests/golden/dispatch_report.json";

fn golden_report() -> DispatchReport {
    let mut scenario = Scenario::steady_state(20110620);
    scenario.max_hosts = 4_000;
    scenario.arrivals = ArrivalLaw::Exponential {
        base_per_day: 20.0,
        growth_per_year: 0.18,
    };
    let fleet = engine::run(&scenario).expect("golden fleet runs");
    let workload = WorkloadSpec::preset("mixed")
        .expect("built-in preset")
        .with_job_budget(3_000);
    let mut report =
        dispatch(&fleet, &workload, DispatchPolicy::EarliestFinish).expect("golden dispatch runs");
    // Wall-clock timings are the only nondeterministic content.
    report.zero_timings();
    report
}

#[test]
fn dispatch_report_is_byte_stable() {
    let json = golden_report().to_json_pretty().unwrap();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file exists (run with UPDATE_GOLDEN=1 to create it)");
    if json != golden {
        // Report just the first differing line and keep the re-bless
        // hint at the end where it is read (mirroring golden_pipeline).
        let diff_line = json
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| json.lines().count().min(golden.lines().count()));
        let actual = json.lines().nth(diff_line).unwrap_or("<end of report>");
        let expected = golden.lines().nth(diff_line).unwrap_or("<end of golden>");
        panic!(
            "dispatch report drifted from {GOLDEN_PATH} at line {}:\n  \
             report: {actual}\n  golden: {expected}\n\
             If the change is intentional, re-bless the golden file with:\n  \
             UPDATE_GOLDEN=1 cargo test --test golden_dispatch",
            diff_line + 1,
        );
    }
}

#[test]
fn same_inputs_same_bytes_within_process() {
    let a = golden_report().to_json_pretty().unwrap();
    let b = golden_report().to_json_pretty().unwrap();
    assert_eq!(a, b);
}
