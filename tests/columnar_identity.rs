//! The columnar refactor's correctness contract, end to end:
//!
//! * `Trace → ColumnarTrace → Trace` is the identity, and per-date
//!   column extraction matches the row path, for proptest-generated
//!   traces across all four scenario families;
//! * the direct fleet→columnar export equals the row-trace detour;
//! * `Pipeline` and `SweepSpec` produce byte-identical JSON on the row
//!   and columnar data paths (wall-clock fields zeroed) — including the
//!   scenario-source fast path that never materialises a row trace.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use resmodel::core::fit::FitConfig;
use resmodel::pipeline::{DataPath, Pipeline, StageTimings};
use resmodel::popsim::{engine, fleet_to_columnar, fleet_to_trace, Scenario};
use resmodel::sweep::SweepSpec;
use resmodel::trace::columnar::ColumnarTrace;
use resmodel::trace::store::ResourceColumn;
use resmodel::trace::{SimDate, Trace};

/// Build one of the four scenario families at a small fleet size.
fn family_trace(family: usize, seed: u64, hosts: usize) -> (Trace, ColumnarTrace) {
    let mut scenario = Scenario::all_builtin(seed).remove(family % 4);
    scenario.max_hosts = hosts;
    let report = engine::run(&scenario).unwrap();
    let trace = fleet_to_trace(&report.fleet, report.scenario.end);
    let direct = fleet_to_columnar(&report.fleet, report.scenario.end);
    (trace, direct)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Round trip + column equality for every family, random seeds,
    /// sizes and probe dates.
    #[test]
    fn columnar_round_trip_and_extraction_match_rows(
        family in 0usize..4,
        seed in 1u64..100_000,
        hosts in 150usize..400,
        probe_year in 2006.5..2011.0f64,
    ) {
        let (trace, direct) = family_trace(family, seed, hosts);

        // Direct fleet export ≡ row detour conversion.
        let converted = ColumnarTrace::from(&trace);
        prop_assert_eq!(&direct, &converted);

        // Trace → ColumnarTrace → Trace is the identity.
        prop_assert_eq!(direct.to_trace().hosts(), trace.hosts());

        // Whole-trace queries agree.
        prop_assert_eq!(direct.start(), trace.start());
        prop_assert_eq!(direct.end(), trace.end());
        let cutoff = SimDate::from_year(2010.0);
        prop_assert_eq!(direct.lifetimes(cutoff), trace.lifetimes(cutoff));

        // Per-date extraction: same active population, same values in
        // the same order, for every resource column.
        let t = SimDate::from_year(probe_year);
        let active = direct.active_at(t);
        prop_assert_eq!(active.len(), trace.active_count(t));
        for column in ResourceColumn::ALL {
            let row_values = trace.column_at(t, column);
            prop_assert_eq!(direct.column_values(&active, column), row_values);
        }
    }
}

/// Activity at exact first/last-contact boundaries agrees between the
/// row and columnar paths (the paper's rule is inclusive on both ends).
#[test]
fn active_at_boundaries_agree_across_paths() {
    let (trace, columnar) = family_trace(0, 7, 200);
    let host = &trace.hosts()[3];
    let first = host.first_contact().unwrap();
    let last = host.last_contact().unwrap();
    for t in [first, last] {
        assert_eq!(
            trace.active_count(t),
            columnar.active_count(t),
            "boundary {t}"
        );
        assert_eq!(
            trace.active_count(t),
            columnar.active_at(t).len(),
            "boundary set {t}"
        );
        assert!(host.is_active_at(t), "inclusive boundary {t}");
    }
}

fn zeroed_report_json(pipeline: Pipeline, path: DataPath) -> String {
    let mut report = pipeline.data_path(path).run().unwrap();
    report.timing = StageTimings::default();
    report.to_json_pretty().unwrap()
}

#[test]
fn pipeline_reports_are_byte_identical_across_paths() {
    let build = || {
        Pipeline::from_scenario(Scenario::flash_crowd(23))
            .max_hosts(6_000)
            .sanitize_default()
            .fit(FitConfig::yearly(2007, 2010))
            .validate(vec![SimDate::from_year(2010.5)])
            .predict(vec![SimDate::from_year(2014.0)])
    };
    assert_eq!(
        zeroed_report_json(build(), DataPath::Row),
        zeroed_report_json(build(), DataPath::Columnar)
    );
}

#[test]
fn scenario_fast_path_matches_row_path_without_sanitize() {
    // No sanitize stage → the columnar path skips the row-trace detour
    // entirely; the report must still be byte-identical.
    let build = || {
        Pipeline::from_scenario(Scenario::steady_state(31))
            .max_hosts(6_000)
            .fit(FitConfig::yearly(2007, 2010))
            .validate(vec![SimDate::from_year(2010.5)])
    };
    assert_eq!(
        zeroed_report_json(build(), DataPath::Row),
        zeroed_report_json(build(), DataPath::Columnar)
    );
    // run_detailed on the fast path reconstructs the exact row trace.
    let row = build().data_path(DataPath::Row).run_detailed().unwrap();
    let col = build()
        .data_path(DataPath::Columnar)
        .run_detailed()
        .unwrap();
    assert_eq!(row.trace.hosts(), col.trace.hosts());
}

#[test]
fn sweep_reports_are_byte_identical_across_paths() {
    let mut spec = SweepSpec::preset("smoke").unwrap();
    spec.scenarios.truncate(2);
    spec.fleet_sizes = vec![3_000];
    let zeroed = |path: DataPath| {
        let mut report = spec.run_with_path(path).unwrap();
        report.zero_timings();
        report.to_json_pretty().unwrap()
    };
    assert_eq!(zeroed(DataPath::Row), zeroed(DataPath::Columnar));
}
