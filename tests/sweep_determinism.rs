//! The sweep determinism contract, mirroring the popsim
//! thread-invariance proptest one layer up: the same [`SweepSpec`]
//! produces a byte-identical [`SweepReport`] JSON (wall-clock fields
//! zeroed, like the golden pipeline report's timings) regardless of the
//! rayon thread count.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use resmodel::sweep::{SweepReport, SweepSpec};

/// Run a spec under a fixed-size rayon pool and return the
/// deterministic (timing-zeroed) report JSON.
fn run_on_threads(spec: &SweepSpec, threads: usize) -> String {
    let mut report: SweepReport = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(|| spec.run().unwrap());
    report.zero_timings();
    report.to_json_pretty().unwrap()
}

/// Engine-only grids: random family subsets, fleet sizes and
/// replicates, small enough that each case stays fast.
fn spec_strategy() -> impl Strategy<Value = SweepSpec> {
    (
        0u64..1_000_000, // master seed
        1usize..5,       // how many scenario families
        150usize..400,   // fleet size
        1usize..3,       // replicate count
    )
        .prop_map(|(seed, families, size, reps)| {
            let mut spec = SweepSpec::preset("replicates").expect("built-in preset");
            spec.seed = seed;
            spec.scenarios.truncate(families);
            spec.fleet_sizes = vec![size];
            spec.replicates = (1..=reps as u64).collect();
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn one_thread_equals_many_threads(spec in spec_strategy()) {
        prop_assert_eq!(run_on_threads(&spec, 1), run_on_threads(&spec, 8));
    }
}

#[test]
fn full_smoke_grid_is_thread_count_invariant() {
    // The CI smoke configuration itself — all four families with
    // sanitize + fit + validate + predict — byte-stable at any pool
    // size, so the uploaded artifacts are machine-independent modulo
    // wall clocks.
    let mut spec = SweepSpec::preset("smoke").expect("built-in preset");
    spec.fleet_sizes = vec![8_000];
    let single = run_on_threads(&spec, 1);
    let many = run_on_threads(&spec, 8);
    assert_eq!(single, many);
    // And re-running the same spec reproduces the same bytes.
    assert_eq!(single, run_on_threads(&spec, 1));
}

#[test]
fn derived_seeds_differ_across_replicates() {
    let mut spec = SweepSpec::preset("replicates").expect("built-in preset");
    spec.fleet_sizes = vec![200];
    let jobs = spec.expand();
    for window in jobs.windows(2) {
        assert_ne!(window[0].seed, window[1].seed);
    }
    // The derived seed is a pure function of (spec.seed, replicate,
    // index): re-expansion reproduces it exactly.
    assert_eq!(jobs, spec.expand());
}
