//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The workspace-standard deterministic generator: xoshiro256**
/// seeded via SplitMix64.
///
/// Not the crates.io `StdRng` stream; only determinism and statistical
/// quality are relied upon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut rng = StdRng { s: [0; 4] };
        rng.reseed_from_u64(state);
        rng
    }
}

impl StdRng {
    /// Reseed in place, producing exactly the state
    /// [`SeedableRng::seed_from_u64`] would build — hot loops that
    /// derive one substream per item can reuse a single generator
    /// instead of constructing a fresh one each time.
    #[inline]
    pub fn reseed_from_u64(&mut self, state: u64) {
        let mut sm = state;
        self.s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_never_all_zero() {
        let rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.s, [0; 4]);
    }

    #[test]
    fn reseed_in_place_equals_fresh_construction() {
        let mut rng = StdRng::seed_from_u64(0);
        for seed in [0, 1, 42, u64::MAX, 0xD15A_7C40_0000_0001] {
            rng.next_u64(); // perturb state so the reseed must overwrite it
            rng.reseed_from_u64(seed);
            assert_eq!(rng, StdRng::seed_from_u64(seed), "seed {seed}");
        }
    }

    #[test]
    fn streams_differ_between_seeds() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let matches = (0..8).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }
}
