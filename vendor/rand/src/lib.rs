//! Vendored, dependency-free stand-in for the parts of the `rand` crate
//! this workspace uses. The build environment has no network access to
//! crates.io, so the workspace pins this local implementation instead.
//!
//! Design notes:
//!
//! * [`Rng`] is the *object-safe* core trait (the workspace passes
//!   `&mut dyn Rng` everywhere); the generic conveniences
//!   (`random::<T>()`, `random_range`) live on the blanket-implemented
//!   [`RngExt`] extension trait.
//! * [`rngs::StdRng`] is xoshiro256** seeded through SplitMix64 — a
//!   small, fast, statistically solid generator. It is **not** the same
//!   stream as crates.io's `StdRng`; the workspace only relies on
//!   determinism and statistical quality, never on golden values.

pub mod rngs;
pub mod seq;

/// Object-safe random-number source.
///
/// All simulation code takes `&mut dyn Rng`, so this trait carries only
/// non-generic methods; use [`RngExt`] for `random::<T>()` and friends.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: Rng + ?Sized> Rng for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from a `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable "from the standard distribution" via
/// [`RngExt::random`]: uniform bits for integers, uniform `[0, 1)` for
/// floats, a fair coin for `bool`.
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types usable as [`RngExt::random_range`] endpoints.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`; panics when the range is empty.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = (high - low) as u64;
                // Widening multiply keeps bias below 2^-64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low + hi as $t
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as i64).wrapping_add(hi as i64)) as $t
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "random_range: empty range");
        let u = f64::sample_standard(rng);
        low + u * (high - low)
    }
}

/// Generic conveniences over any [`Rng`] (including `dyn Rng`).
pub trait RngExt: Rng {
    /// One draw from the standard distribution of `T` (uniform bits for
    /// integers, uniform `[0, 1)` for floats).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from the half-open `range`.
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_draws_stay_inside() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
            let n = rng.random_range(0..10usize);
            assert!(n < 10);
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_dyn() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let x: f64 = dyn_rng.random();
        assert!((0.0..1.0).contains(&x));
        let k = dyn_rng.random_range(0..5u32);
        assert!(k < 5);
    }
}
