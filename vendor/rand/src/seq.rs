//! Sequence helpers: shuffling and random element choice.

use crate::{Rng, RngExt};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(5);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With overwhelming probability the order changed.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_member() {
        let v = [10, 20, 30];
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
