//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//! for the minimal serde subset in `vendor/serde`.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`
//! available offline). Supports exactly the shapes this workspace
//! derives on:
//!
//! * structs with named fields,
//! * tuple structs (single-field tuples use serde's newtype convention),
//! * unit structs,
//! * enums whose variants are unit, named-field or tuple-field.
//!
//! Generics and `#[serde(...)]` customisation attributes are not
//! supported; deriving on such a type is a compile error rather than a
//! silent misbehaviour.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input, true) {
        Ok(code) => code.parse().expect("serde_derive generated invalid Rust"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match generate(input, false) {
        Ok(code) => code.parse().expect("serde_derive generated invalid Rust"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------

struct Variant {
    name: String,
    fields: Fields,
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------
// Token-tree parsing
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skip any number of outer attributes (`#[...]`), including the
    /// `#[doc = "..."]` forms doc comments lower to.
    fn skip_attributes(&mut self) {
        loop {
            match (self.peek(), self.tokens.get(self.pos + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    self.pos += 2;
                }
                _ => return,
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)` etc.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, String> {
        match self.bump() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("serde_derive: expected {what}, found {other:?}")),
        }
    }

    /// Skip tokens until a top-level comma (tracking `<...>` depth for
    /// generic types), consuming the comma. Returns whether a comma was
    /// found (false at end of input).
    fn skip_past_toplevel_comma(&mut self) -> bool {
        let mut angle_depth: i32 = 0;
        while let Some(tok) = self.bump() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => return true,
                    _ => {}
                }
            }
        }
        false
    }
}

fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let mut cur = Cursor::new(group);
    let mut names = Vec::new();
    loop {
        cur.skip_attributes();
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        names.push(cur.expect_ident("field name")?);
        match cur.bump() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde_derive: expected `:`, found {other:?}")),
        }
        if !cur.skip_past_toplevel_comma() {
            break;
        }
    }
    Ok(names)
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut cur = Cursor::new(group);
    let mut count = 0;
    loop {
        cur.skip_attributes();
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        if cur.at_end() {
            break;
        }
        count += 1;
        if !cur.skip_past_toplevel_comma() {
            break;
        }
    }
    count
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    cur.skip_attributes();
    cur.skip_visibility();
    let keyword = cur.expect_ident("`struct` or `enum`")?;
    let name = cur.expect_ident("type name")?;
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive: generic type `{name}` is not supported by the vendored derive"
            ));
        }
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match cur.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("serde_derive: unexpected struct body {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match cur.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("serde_derive: unexpected enum body {other:?}")),
            };
            let mut vcur = Cursor::new(body);
            let mut variants = Vec::new();
            loop {
                vcur.skip_attributes();
                if vcur.at_end() {
                    break;
                }
                let vname = vcur.expect_ident("variant name")?;
                let fields = match vcur.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let f = Fields::Named(parse_named_fields(g.stream())?);
                        vcur.pos += 1;
                        f
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let f = Fields::Tuple(count_tuple_fields(g.stream()));
                        vcur.pos += 1;
                        f
                    }
                    _ => Fields::Unit,
                };
                variants.push(Variant {
                    name: vname,
                    fields,
                });
                // Skip an optional `= discriminant` and the trailing comma.
                if !vcur.at_end() && !vcur.skip_past_toplevel_comma() {
                    break;
                }
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("serde_derive: cannot derive on `{other}` items")),
    }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn generate(input: TokenStream, serialize: bool) -> Result<String, String> {
    let item = parse_item(input)?;
    Ok(match (&item, serialize) {
        (Item::Struct { name, fields }, true) => gen_struct_ser(name, fields),
        (Item::Struct { name, fields }, false) => gen_struct_de(name, fields),
        (Item::Enum { name, variants }, true) => gen_enum_ser(name, variants),
        (Item::Enum { name, variants }, false) => gen_enum_de(name, variants),
    })
}

fn gen_struct_ser(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let pushes: String = names
                .iter()
                .map(|f| {
                    format!(
                        "__m.push((::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new(); {pushes} ::serde::Value::Map(__m)"
            )
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_struct_de(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::field(__v, {f:?})?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{ \
                   ::serde::Value::Seq(__items) if __items.len() == {n} => \
                     ::std::result::Result::Ok({name}({inits})), \
                   __other => ::std::result::Result::Err(::serde::DeError::new(\
                     ::std::format!(\"expected {n}-element array for {name}, got {{}}\", \
                                    __other.kind()))) \
                 }}",
                inits = inits.join(", ")
            )
        }
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> \
               ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?})),"
                ),
                Fields::Named(fields) => {
                    let binds = fields.join(", ");
                    let pushes: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "__inner.push((::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value({f})));"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {binds} }} => {{ \
                           let mut __inner: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new(); {pushes} \
                           ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Value::Map(__inner))]) }},"
                    )
                }
                Fields::Tuple(1) => format!(
                    "{name}::{vn}(__x0) => ::serde::Value::Map(::std::vec![(\
                       ::std::string::String::from({vn:?}), \
                       ::serde::Serialize::to_value(__x0))]),"
                ),
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!(
                        "{name}::{vn}({binds}) => ::serde::Value::Map(::std::vec![(\
                           ::std::string::String::from({vn:?}), \
                           ::serde::Value::Seq(::std::vec![{items}]))]),",
                        binds = binds.join(", "),
                        items = items.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ \
             match self {{ {arms} }} \
           }} \
         }}"
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| {
            let vn = &v.name;
            format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
        })
        .collect();
    let payload_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => None,
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(__inner, {f:?})?"))
                        .collect();
                    Some(format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                        inits.join(", ")
                    ))
                }
                Fields::Tuple(1) => Some(format!(
                    "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                       ::serde::Deserialize::from_value(__inner)?)),"
                )),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    Some(format!(
                        "{vn:?} => match __inner {{ \
                           ::serde::Value::Seq(__items) if __items.len() == {n} => \
                             ::std::result::Result::Ok({name}::{vn}({inits})), \
                           __other => ::std::result::Result::Err(::serde::DeError::new(\
                             ::std::format!(\"variant {name}::{vn}: expected {n}-element \
                              array, got {{}}\", __other.kind()))) \
                         }},",
                        inits = inits.join(", ")
                    ))
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> \
               ::std::result::Result<Self, ::serde::DeError> {{ \
             match __v {{ \
               ::serde::Value::Str(__s) => match __s.as_str() {{ \
                 {unit_arms} \
                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                   ::std::format!(\"unknown {name} variant `{{__other}}`\"))), \
               }}, \
               ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                 let (__k, __inner) = &__entries[0]; \
                 match __k.as_str() {{ \
                   {payload_arms} \
                   __other => ::std::result::Result::Err(::serde::DeError::new(\
                     ::std::format!(\"unknown {name} variant `{{__other}}`\"))), \
                 }} \
               }} \
               __other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"expected {name} variant, got {{}}\", __other.kind()))), \
             }} \
           }} \
         }}"
    )
}
