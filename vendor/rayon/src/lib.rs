//! Vendored, dependency-free stand-in for the parts of `rayon` this
//! workspace uses, implemented over `std::thread::scope`.
//!
//! The API subset: `join`, slice/vec `par_iter` / `par_iter_mut` with
//! `for_each` and `map(..).collect::<Vec<_>>()`, plus
//! `ThreadPoolBuilder::num_threads(..)` whose `install` sets the
//! parallelism level for the enclosed closure (used by determinism
//! tests to compare 1-thread and N-thread runs).
//!
//! Work is split into contiguous chunks, one per thread, and results
//! are reassembled in index order — so outputs never depend on the
//! thread count, only the *schedule* does.

use std::cell::Cell;

thread_local! {
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads parallel operations will use in this context.
pub fn current_num_threads() -> usize {
    let forced = THREAD_OVERRIDE.with(Cell::get);
    if forced > 0 {
        return forced;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// Builder for a scoped thread-count override.
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Fresh builder using the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the number of worker threads (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    ///
    /// # Errors
    ///
    /// Infallible here; the `Result` mirrors the real rayon signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped thread-count context.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count as the ambient
    /// parallelism level.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = THREAD_OVERRIDE.with(|c| c.replace(self.num_threads));
        let result = f();
        THREAD_OVERRIDE.with(|c| c.set(previous));
        result
    }
}

/// Split `len` items into at most `current_num_threads()` contiguous
/// chunk ranges.
fn chunk_ranges(len: usize) -> Vec<std::ops::Range<usize>> {
    let workers = current_num_threads().clamp(1, len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

pub mod iter {
    //! Parallel iterator shims.

    use super::chunk_ranges;

    /// `.par_iter()` on shared slices.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: 'a;

        /// Parallel shared iterator.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;

        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;

        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    /// `.par_iter_mut()` on exclusive slices.
    pub trait IntoParallelRefMutIterator<'a> {
        /// Element type.
        type Item: 'a;

        /// Parallel exclusive iterator.
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = T;

        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            ParIterMut { items: self }
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = T;

        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            ParIterMut { items: self }
        }
    }

    /// Parallel shared-slice iterator.
    pub struct ParIter<'a, T> {
        items: &'a [T],
    }

    impl<'a, T: Sync> ParIter<'a, T> {
        /// Apply `f` to every element.
        pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
            let ranges = chunk_ranges(self.items.len());
            if ranges.len() <= 1 {
                self.items.iter().for_each(f);
                return;
            }
            std::thread::scope(|scope| {
                for range in ranges {
                    let chunk = &self.items[range];
                    let f = &f;
                    scope.spawn(move || chunk.iter().for_each(f));
                }
            });
        }

        /// Map every element through `f`.
        pub fn map<U, F: Fn(&'a T) -> U + Sync>(self, f: F) -> ParMap<'a, T, F> {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    /// Parallel map stage; terminate with [`ParMap::collect`].
    pub struct ParMap<'a, T, F> {
        items: &'a [T],
        f: F,
    }

    impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParMap<'a, T, F> {
        /// Collect mapped values, preserving input order regardless of
        /// the thread count.
        pub fn collect<C: FromIterator<U>>(self) -> C {
            let ranges = chunk_ranges(self.items.len());
            if ranges.len() <= 1 {
                return self.items.iter().map(&self.f).collect();
            }
            let mut partials: Vec<Vec<U>> = Vec::new();
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(ranges.len());
                for range in ranges {
                    let chunk = &self.items[range];
                    let f = &self.f;
                    handles.push(scope.spawn(move || chunk.iter().map(f).collect::<Vec<U>>()));
                }
                for h in handles {
                    partials.push(h.join().expect("rayon map worker panicked"));
                }
            });
            partials.into_iter().flatten().collect()
        }
    }

    /// Parallel exclusive-slice iterator.
    pub struct ParIterMut<'a, T> {
        items: &'a mut [T],
    }

    impl<'a, T: Send> ParIterMut<'a, T> {
        /// Apply `f` to every element.
        pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
            let ranges = chunk_ranges(self.items.len());
            if ranges.len() <= 1 {
                self.items.iter_mut().for_each(&f);
                return;
            }
            std::thread::scope(|scope| {
                let mut rest = self.items;
                let mut consumed = 0;
                for range in ranges {
                    let (chunk, tail) = rest.split_at_mut(range.end - consumed);
                    consumed = range.end;
                    rest = tail;
                    let f = &f;
                    scope.spawn(move || chunk.iter_mut().for_each(f));
                }
            });
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::iter::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut v = vec![1u32; 257];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 1);
        let pool4 = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool4.install(current_num_threads), 4);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let input: Vec<u64> = (0..501).collect();
        let run = |threads: usize| {
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| input.par_iter().map(|x| x * x).collect::<Vec<_>>())
        };
        assert_eq!(run(1), run(7));
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 17, 256] {
            let ranges = chunk_ranges(len);
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, len);
        }
    }
}
