//! Vendored, dependency-free stand-in for the parts of `serde_json`
//! this workspace uses: pretty/compact rendering, parsing, the [`json!`]
//! macro and the dynamic [`Value`] type (shared with the vendored
//! `serde`).

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON (de)serialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstruct a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] when the tree does not match `T`'s shape.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Render as compact JSON.
///
/// # Errors
///
/// Infallible in this implementation; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Render as pretty JSON (two-space indent).
///
/// # Errors
///
/// Infallible in this implementation; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parse JSON text into a typed value.
///
/// # Errors
///
/// Returns an [`Error`] for malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trippable representation is
                // valid JSON except that it may omit the decimal part
                // ("50"), which is fine: the parser yields an integer
                // and numeric deserialization accepts either.
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax problem.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid token at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(mag) = stripped.parse::<u64>() {
                    if mag <= i64::MAX as u64 {
                        return Ok(Value::Int(-(mag as i64)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

/// Build a [`Value`] with JSON-like syntax.
///
/// Supports object literals with string keys, array literals, `null`
/// and arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![ $($crate::to_value(&$elem)),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Map(::std::vec![
            $((::std::string::String::from($key), $crate::to_value(&$val))),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Float(2.5)),
            ("c".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("d".into(), Value::Str("x \"y\"\n".into())),
            ("e".into(), Value::Int(-7)),
        ]);
        let text = to_string_pretty(&v).unwrap();
        let back = parse_value(&text).unwrap();
        assert_eq!(v, back);
        let compact = to_string(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &f in &[3.369, -0.5004, 1.379e6, 0.1, 2890.0, f64::MIN_POSITIVE] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn large_u64_survives() {
        let seed = u64::MAX - 12345;
        let text = to_string(&seed).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, seed);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<f64>("not json").is_err());
        assert!(parse_value("{\"a\": }").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("\"unterminated").is_err());
    }

    #[test]
    fn json_macro_builds_objects() {
        let cores = 4u32;
        let v = json!({"cores": cores, "label": "x", "list": [1u32, 2u32]});
        assert_eq!(v["cores"], Value::UInt(4));
        assert_eq!(v["label"], Value::Str("x".into()));
        assert_eq!(v["list"], Value::Seq(vec![Value::UInt(1), Value::UInt(2)]));
        assert_eq!(json!(null), Value::Null);
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }
}
