//! The self-describing value tree shared by `serde` and `serde_json`.

/// A JSON-shaped dynamic value.
///
/// Integers keep their signedness ([`Value::Int`] / [`Value::UInt`]) so
/// full-range `u64` seeds survive round-trips that an `f64`-only
/// representation would corrupt.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative (or generic signed) integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }

    /// Object member by key, `None` when absent or not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as `u64` when a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as `&str` when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool when boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice when an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Member access; absent keys (or non-objects) yield `null`,
    /// matching `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Auto-vivifying member access, matching `serde_json`: indexing a
    /// `null` turns it into an object; a missing key is inserted as
    /// `null`.
    ///
    /// # Panics
    ///
    /// Panics when `self` is neither an object nor `null`.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Map(Vec::new());
        }
        match self {
            Value::Map(entries) => {
                if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
                    &mut entries[pos].1
                } else {
                    entries.push((key.to_owned(), Value::Null));
                    &mut entries.last_mut().unwrap().1
                }
            }
            other => panic!("cannot index {} with a string key", other.kind()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_missing_gives_null() {
        let v = Value::Map(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v["a"], Value::UInt(1));
        assert_eq!(v["b"], Value::Null);
        assert_eq!(Value::Null["x"], Value::Null);
    }

    #[test]
    fn index_mut_auto_inserts() {
        let mut v = Value::Map(Vec::new());
        v["x"] = Value::Bool(true);
        assert_eq!(v["x"], Value::Bool(true));
        let mut n = Value::Null;
        n["k"] = Value::UInt(2);
        assert_eq!(n["k"], Value::UInt(2));
    }
}
