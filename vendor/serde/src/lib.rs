//! Vendored, dependency-free stand-in for the parts of `serde` this
//! workspace uses. The build environment has no network access to
//! crates.io, so the workspace pins this local implementation instead.
//!
//! Unlike real serde's visitor architecture, this subset round-trips
//! every value through a self-describing [`Value`] tree; `serde_json`
//! (also vendored) renders and parses that tree as JSON. The public
//! surface the workspace relies on is identical: `Serialize` /
//! `Deserialize` derives plus `serde_json::{to_string_pretty,
//! from_str, json!, Value}`.

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::Value;

/// Error produced when a [`Value`] cannot be interpreted as the
/// requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Create an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Convert to the self-describing value tree.
    fn to_value(&self) -> Value;
}

/// A type reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from the value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first mismatch between the
    /// tree and the expected shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Hook for absent struct fields. The default is an error;
    /// `Option<T>` overrides it to yield `None`, mirroring serde's
    /// treatment of missing optional fields.
    ///
    /// # Errors
    ///
    /// Returns a "missing field" [`DeError`] unless overridden.
    fn missing_field(name: &str) -> Result<Self, DeError> {
        Err(DeError::new(format!("missing field `{name}`")))
    }
}

/// Look up `name` in a map value and deserialize it — the helper the
/// derive macro generates calls through.
///
/// # Errors
///
/// Propagates element errors; absent keys go through
/// [`Deserialize::missing_field`].
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(inner) => {
            T::from_value(inner).map_err(|e| DeError::new(format!("field `{name}`: {e}")))
        }
        None => T::missing_field(name),
    }
}

// ---------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::new(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) if *i >= 0 => Ok(*i as $t),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(DeError::new(format!(
                        "expected unsigned integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    // serde_json renders non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::new(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Static-string fields (e.g. table labels) round-trip by leaking
    /// the decoded string. Only configuration-sized data flows through
    /// this path, so the leak is bounded and acceptable.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!("expected char, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_name: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::new(format!(
                        "expected {}-tuple, got {}", LEN, other.kind()
                    ))),
                }
            }
        }
    )*};
}
ser_de_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i32::from_value(&42i32.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&7u64.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_handles_null_and_missing() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::UInt(3)).unwrap(), Some(3));
        assert_eq!(Option::<u32>::missing_field("x").unwrap(), None);
        assert!(u32::missing_field("x").is_err());
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u32, 2.5f64);
        assert_eq!(<(u32, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn type_mismatch_reports_kind() {
        let err = bool::from_value(&Value::UInt(1)).unwrap_err();
        assert!(err.to_string().contains("expected bool"));
    }
}
