//! Vendored, dependency-free stand-in for the parts of `criterion`
//! this workspace uses. It measures and reports wall-clock medians
//! without criterion's statistical machinery — good enough to compare
//! orders of magnitude and to keep `cargo bench` runnable offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// Benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Benchmark a single function under `id`.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmark a function within the group.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Finish the group (no-op; matches the criterion API).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, budget: Duration, f: &mut F) {
    // Warm-up / calibration pass.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));

    // Choose an iteration count that fits the budget.
    let samples = sample_size.max(1) as u32;
    let per_sample = budget / samples;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut times: Vec<Duration> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed / iters as u32);
    }
    times.sort();
    let median = times[times.len() / 2];
    println!("bench: {label:<40} {median:>12.3?}/iter  ({samples} samples x {iters} iters)");
}

/// Timing handle passed to the closure of `bench_function`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over a mutable per-batch state built by `setup`
    /// (setup time excluded).
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Time `routine` over an owned per-batch state built by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Declare a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (`--bench`); ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("noop", |b| {
            count += 1;
            b.iter(|| black_box(1 + 1))
        });
        assert!(count > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(10));
        group.bench_function("inner", |b| {
            b.iter_batched_ref(|| 0u64, |x| *x += 1, BatchSize::SmallInput)
        });
        group.finish();
    }
}
