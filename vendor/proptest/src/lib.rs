//! Vendored, dependency-light stand-in for the parts of `proptest` this
//! workspace uses: the [`proptest!`] macro, range and collection
//! strategies, `prop_map`, `Just`, and the `prop_assert*` macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case
//! panics immediately with the generating seed in the message, which is
//! enough for a deterministic, seeded test-suite.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

/// Runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// FNV-1a hash used to derive a per-property RNG stream from its name.
pub fn fnv(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The RNG handed to strategies, seeded per property and case.
pub fn case_rng(name_hash: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(name_hash ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of random values for one property-test argument.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// Length specification accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Union of same-valued strategies; each draw picks one uniformly
/// (the vendored analogue of `prop_oneof!`'s unweighted form).
pub struct OneOf<T> {
    /// The alternatives.
    pub variants: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.variants.len());
        self.variants[i].generate(rng)
    }
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($variant:expr),+ $(,)?) => {{
        let mut variants: Vec<Box<dyn $crate::Strategy<Value = _>>> = Vec::new();
        $(variants.push(Box::new($variant));)+
        $crate::OneOf { variants }
    }};
}

/// `Option` strategies (`proptest::option::of`).
pub mod option {
    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` from `inner` three draws out of four, `None` otherwise
    /// (matching real proptest's default Some-bias).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        OneOf, ProptestConfig, Strategy,
    };

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Property assertion; panics (no shrinking in the vendored harness).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests.
///
/// The usual form attaches `#[test]` to each property; metas are
/// optional, so a doctest can define and invoke a property directly:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __hash = $crate::fnv(stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::case_rng(__hash, __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // The block runs per case; prop_assume! skips via
                // `continue`, prop_assert! panics on failure.
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_produce_in_range(x in 1.5..9.5f64, n in 3u32..7) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..7).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0.0..1.0f64, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn prop_map_applies(d in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(d < 19);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn generated_properties_run() {
        ranges_produce_in_range();
        vec_lengths_respect_bounds();
        prop_map_applies();
        assume_skips();
    }

    #[test]
    fn deterministic_per_name_and_case() {
        use crate::Strategy;
        let mut a = crate::case_rng(crate::fnv("p"), 0);
        let mut b = crate::case_rng(crate::fnv("p"), 0);
        assert_eq!(
            (0.0..1.0f64).generate(&mut a),
            (0.0..1.0f64).generate(&mut b)
        );
    }
}
